package overlay

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"adhocshare/internal/chord"
	"adhocshare/internal/flight"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/trace"
)

// Config parameterizes a hybrid overlay deployment.
type Config struct {
	// Bits is the identifier-circle width (default 32; Fig. 1 uses 4).
	Bits uint
	// SuccListSize is the Chord successor-list length (default 4).
	SuccListSize int
	// Replication is the number of copies of each location-table posting
	// (default 2: primary plus one successor replica).
	Replication int
	// SerialPublish selects the legacy publication pipeline: per-key
	// FindSuccessor resolution and one PutBatch shipment at a time. The
	// default (false) resolves all keys with one batched FindSuccessor and
	// ships the per-owner batches in parallel; the serial path is retained
	// as the differential baseline for tests and the E2 comparison.
	SerialPublish bool
	// Adaptive enables workload-adaptive hot-key replication (default
	// off): index nodes count lookups per key with a decayed threshold and
	// push epoch-stamped copies of hot rows to ring successors, which
	// adaptive initiators (LookupClient) then read in place of the home
	// successor. The static path stays byte-identical with the knob off.
	Adaptive bool
	// HotThreshold is the decayed per-key lookup count at which a key is
	// promoted to hot (default 4).
	HotThreshold int
	// HotHalfLife is the virtual-time window after which a key's lookup
	// count halves (default 2s of VTime). Decay is computed in whole
	// windows from integer VTimes, so it is deterministic.
	HotHalfLife simnet.VTime
	// HotReplicas is the number of ring successors that receive a copy of
	// a hot key's row (default 2).
	HotReplicas int
	// Net is the simulated network cost model.
	Net simnet.Config
}

func (c Config) withDefaults() Config {
	if c.Bits == 0 || c.Bits > 64 {
		c.Bits = 32
	}
	if c.SuccListSize <= 0 {
		c.SuccListSize = 4
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = 4
	}
	if c.HotHalfLife <= 0 {
		c.HotHalfLife = simnet.VTime(2 * time.Second)
	}
	if c.HotReplicas <= 0 {
		c.HotReplicas = 2
	}
	return c
}

// System assembles and operates one hybrid overlay: the Chord ring of
// index nodes plus the storage nodes attached to them. It exists on the
// "operator" side of the simulation — nodes still only interact through
// simnet messages; System just tracks membership and drives maintenance.
type System struct {
	cfg Config
	net *simnet.Network

	mu      sync.RWMutex
	index   map[simnet.Addr]*IndexNode
	storage map[simnet.Addr]*StorageNode
	// epoch is the stabilization epoch: it advances whenever ring
	// maintenance or membership changes may have moved key ownership, and
	// bounds the validity of the storage nodes' successor-owner caches.
	epoch uint64
	// traceSeq allocates deterministic trace identifiers: operations issued
	// in the same order get the same IDs, so seeded runs trace identically.
	traceSeq uint64
	// pubSeq allocates shipment sequence numbers for PutBatch deduplication.
	// The counter is shared by all publishers of the deployment but strictly
	// increasing, so each publisher's shipment stream is monotone — the
	// property the index nodes' duplicate suppression relies on. Sequence
	// values are never serialized into modeled payload sizes (seqWidth is
	// fixed), so VTimes stay identical whatever values the counter hands out.
	pubSeq uint64
}

// NewSystem creates an empty deployment.
func NewSystem(cfg Config) *System {
	cfg = cfg.withDefaults()
	return &System{
		cfg:     cfg,
		net:     simnet.New(cfg.Net),
		index:   map[simnet.Addr]*IndexNode{},
		storage: map[simnet.Addr]*StorageNode{},
	}
}

// Net exposes the underlying simulated network (for metrics and failure
// injection).
func (s *System) Net() *simnet.Network { return s.net }

// NextTraceID allocates the identifier of a new trace (a query or a system
// operation). IDs come from a per-deployment counter, not a clock, so a
// seeded run always numbers its traces identically.
//adhoclint:faultpath(benign, monotone trace-ID allocator; an identifier wasted by a failed operation is unobservable)
func (s *System) NextTraceID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traceSeq++
	return s.traceSeq
}

// traceOp opens a trace for one system-level operation when a recorder is
// attached. It returns the root context to thread through the operation's
// messages and a finish hook recording the op span over the charged
// interval; with tracing disabled both are zero and nothing allocates.
func (s *System) traceOp(name string, node simnet.Addr) (trace.TraceContext, func(start, end simnet.VTime)) {
	rec := s.net.Recorder()
	if rec == nil {
		return trace.TraceContext{}, nil
	}
	tc := trace.Root(s.NextTraceID())
	return tc, func(start, end simnet.VTime) {
		rec.Record(trace.Span{
			Query: tc.Query,
			ID:    tc.Span,
			Kind:  trace.KindOp,
			Name:  name,
			From:  string(node),
			Start: int64(start),
			End:   int64(end),
		})
	}
}

// nextPubSeq allocates one PutBatch shipment sequence number.
//adhoclint:faultpath(benign, sequence allocator; PutBatch dedup needs only monotonicity, so numbers wasted by failed shipments are harmless)
func (s *System) nextPubSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pubSeq++
	return s.pubSeq
}

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// AddIndexNode creates an index node whose ring identifier is the hash of
// its address and joins it to the ring. It returns the node and the
// virtual completion time.
func (s *System) AddIndexNode(addr simnet.Addr, at simnet.VTime) (*IndexNode, simnet.VTime, error) {
	return s.AddIndexNodeWithID(addr, chord.HashID(string(addr), s.cfg.Bits), at)
}

// AddIndexNodeWithID creates an index node with an explicit identifier
// (used to reconstruct the paper's Fig. 1 topology). The node is entered
// into the deployment before the ring join so concurrent reads see it; a
// failed join removes and deregisters it again before the error surfaces.
//adhoclint:faultpath(compensated, a failed join deletes the node from the deployment and deregisters its handler, restoring the pre-call state)
func (s *System) AddIndexNodeWithID(addr simnet.Addr, id chord.ID, at simnet.VTime) (*IndexNode, simnet.VTime, error) {
	s.mu.Lock()
	if _, dup := s.index[addr]; dup {
		s.mu.Unlock()
		return nil, at, fmt.Errorf("overlay: index node %s already exists", addr)
	}
	// The bootstrap choice must be deterministic (smallest live address):
	// it decides where the join's find_successor walk starts, so a
	// map-order pick would make join latency — and with it every VTime
	// downstream of the join — vary between same-seed runs.
	var bootstrap simnet.Addr
	for a := range s.index {
		if s.net.Alive(a) && (bootstrap == "" || a < bootstrap) {
			bootstrap = a
		}
	}
	n := NewIndexNode(s.net, addr, id, chord.Config{Bits: s.cfg.Bits, SuccListSize: s.cfg.SuccListSize}, s.cfg.Replication)
	if s.cfg.Adaptive {
		n.EnableAdaptive(AdaptiveParams{
			Threshold: s.cfg.HotThreshold,
			HalfLife:  s.cfg.HotHalfLife,
			Replicas:  s.cfg.HotReplicas,
		})
	}
	s.index[addr] = n
	s.mu.Unlock()

	now := at
	if bootstrap == "" {
		n.Chord.Create()
		return n, now, nil
	}
	done, err := n.Chord.Join(bootstrap, now)
	now = done
	if err != nil {
		s.evictIndexNode(addr)
		return nil, now, err
	}
	now = s.Converge(now)
	// Pull the location-table slice this node is now responsible for
	// (Sect. III-C).
	done, err = n.JoinTransfer(now)
	now = done
	if err != nil {
		s.evictIndexNode(addr)
		return nil, now, err
	}
	return n, now, nil
}

// evictIndexNode compensates a failed index-node join: the half-joined
// node is deleted from the deployment and its handler deregistered, so
// the deployment returns to its pre-join state.
func (s *System) evictIndexNode(addr simnet.Addr) {
	s.mu.Lock()
	delete(s.index, addr)
	s.mu.Unlock()
	s.net.Deregister(addr)
}

// AddStorageNode creates a storage node attached to the index node that is
// the Chord successor of the storage node's hashed address (any attachment
// rule works; this one is deterministic). The node starts empty — call
// Publish to share triples.
func (s *System) AddStorageNode(addr simnet.Addr, at simnet.VTime) (*StorageNode, simnet.VTime, error) {
	s.mu.RLock()
	nIndex := len(s.index)
	s.mu.RUnlock()
	if nIndex == 0 {
		return nil, at, fmt.Errorf("overlay: no index nodes to attach to")
	}
	entry := s.anyIndexAddr()
	resp, done, err := simnet.Retry(simnet.DefaultAttempts, at,
		func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return s.net.Call(addr, entry, chord.MethodFindSuccessor,
				chord.FindReq{Target: chord.HashID(string(addr), s.cfg.Bits)}, at)
		})
	now := done
	if err != nil {
		return nil, now, fmt.Errorf("overlay: attach lookup: %w", err)
	}
	attach := resp.(chord.FindResp).Node.Addr

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.storage[addr]; dup {
		return nil, now, fmt.Errorf("overlay: storage node %s already exists", addr)
	}
	n := NewStorageNode(s.net, addr, attach)
	s.storage[addr] = n
	return n, now, nil
}

// Publish adds triples to the storage node's local graph and installs the
// six index keys per triple in the distributed index (Sect. III-B),
// batching all keys that land on the same index node into one message.
// It returns the virtual completion time.
//
//adhoclint:faultpath(compensated, a failed installation un-adds the new triples so graph and index stay consistent; postings already installed elsewhere are over-approximating hints that local matching filters and Republish repairs)
func (s *System) Publish(storage simnet.Addr, triples []rdf.Triple, at simnet.VTime) (simnet.VTime, error) {
	s.mu.RLock()
	node, ok := s.storage[storage]
	s.mu.RUnlock()
	if !ok {
		return at, fmt.Errorf("overlay: unknown storage node %s", storage)
	}
	// Count new triples per key (duplicates in the graph are not re-indexed).
	freq := map[chord.ID]int{}
	added := make([]rdf.Triple, 0, len(triples))
	for _, t := range triples {
		if !node.Graph.Add(t) {
			continue
		}
		added = append(added, t)
		for _, key := range TripleKeys(t, s.cfg.Bits) {
			freq[key]++
		}
	}
	node.InvalidateViews()
	tc, finish := s.traceOp("overlay.publish", storage)
	done, err := s.installPostings(node, freq, tc, at)
	if finish != nil {
		finish(at, done)
	}
	if err != nil {
		for _, t := range added {
			node.Graph.Remove(t)
		}
		node.InvalidateViews()
	}
	return done, err
}

// PublishGraph adds triples to one of the storage node's *named* graphs
// (Sect. IV-A datasets) and installs their index keys. Postings do not
// distinguish graphs: lookups over-approximate and the FROM restriction is
// applied at the provider during local matching.
//
//adhoclint:faultpath(compensated, a failed installation un-adds the new triples from the named graph; leftover remote postings are over-approximating hints)
func (s *System) PublishGraph(storage simnet.Addr, graphIRI string, triples []rdf.Triple, at simnet.VTime) (simnet.VTime, error) {
	s.mu.RLock()
	node, ok := s.storage[storage]
	s.mu.RUnlock()
	if !ok {
		return at, fmt.Errorf("overlay: unknown storage node %s", storage)
	}
	g := node.NamedGraph(graphIRI)
	freq := map[chord.ID]int{}
	added := make([]rdf.Triple, 0, len(triples))
	for _, t := range triples {
		if !g.Add(t) {
			continue
		}
		added = append(added, t)
		for _, key := range TripleKeys(t, s.cfg.Bits) {
			freq[key]++
		}
	}
	node.InvalidateViews()
	tc, finish := s.traceOp("overlay.publish_graph", storage)
	done, err := s.installPostings(node, freq, tc, at)
	if finish != nil {
		finish(at, done)
	}
	if err != nil {
		for _, t := range added {
			g.Remove(t)
		}
		node.InvalidateViews()
	}
	return done, err
}

// Retract removes triples from the storage node and decrements the index
// frequencies.
//
//adhoclint:faultpath(compensated, a failed decrement re-adds the removed triples; Republish repairs any owner whose decrement had already applied)
func (s *System) Retract(storage simnet.Addr, triples []rdf.Triple, at simnet.VTime) (simnet.VTime, error) {
	s.mu.RLock()
	node, ok := s.storage[storage]
	s.mu.RUnlock()
	if !ok {
		return at, fmt.Errorf("overlay: unknown storage node %s", storage)
	}
	freq := map[chord.ID]int{}
	removed := make([]rdf.Triple, 0, len(triples))
	for _, t := range triples {
		if !node.Graph.Remove(t) {
			continue
		}
		removed = append(removed, t)
		for _, key := range TripleKeys(t, s.cfg.Bits) {
			freq[key]--
		}
	}
	node.InvalidateViews()
	tc, finish := s.traceOp("overlay.retract", storage)
	done, err := s.installPostings(node, freq, tc, at)
	if finish != nil {
		finish(at, done)
	}
	if err != nil {
		for _, t := range removed {
			node.Graph.Add(t)
		}
		node.InvalidateViews()
	}
	return done, err
}

// Republish reinstalls the index postings for everything the storage node
// currently shares, with absolute (idempotent) frequencies — the recovery
// step for a provider whose postings were dropped while it was crashed
// (Sect. III-D). Repeating it is harmless.
func (s *System) Republish(storage simnet.Addr, at simnet.VTime) (simnet.VTime, error) {
	s.mu.RLock()
	node, ok := s.storage[storage]
	s.mu.RUnlock()
	if !ok {
		return at, fmt.Errorf("overlay: unknown storage node %s", storage)
	}
	freq := map[chord.ID]int{}
	count := func(g *rdf.Graph) {
		for _, t := range g.Triples() {
			for _, key := range TripleKeys(t, s.cfg.Bits) {
				freq[key]++
			}
		}
	}
	count(node.Graph)
	for _, name := range node.GraphNames() {
		count(node.NamedGraph(name))
	}
	tc, finish := s.traceOp("overlay.republish", storage)
	done, err := s.installPostingsMode(node, freq, true, tc, at)
	if finish != nil {
		finish(at, done)
	}
	return done, err
}

// installPostings resolves the responsible index node for every key (via
// the storage node's attachment point) and ships one batch per index node.
func (s *System) installPostings(node *StorageNode, freq map[chord.ID]int, tc trace.TraceContext, at simnet.VTime) (simnet.VTime, error) {
	return s.installPostingsMode(node, freq, false, tc, at)
}

// reattachIfNeeded re-homes a storage node whose attachment index node is
// no longer alive: in the ad-hoc setting, a storage node simply attaches
// to another ring member (Sect. III-A).
//adhoclint:faultpath(benign, deterministic re-homing repair; re-running converges to the same attachment and a failed caller leaves the node validly re-homed)
func (s *System) reattachIfNeeded(node *StorageNode) error {
	if s.net.Alive(node.attached) {
		return nil
	}
	next := s.anyIndexAddr()
	if next == "" {
		return fmt.Errorf("overlay: no live index node to re-attach %s", node.addr)
	}
	node.attached = next
	// A new attachment point means routing starts from a different ring
	// position; cached owners may reflect the dead node's view.
	node.DropOwnerCache()
	return nil
}

func (s *System) installPostingsMode(node *StorageNode, freq map[chord.ID]int, absolute bool, tc trace.TraceContext, at simnet.VTime) (simnet.VTime, error) {
	if err := s.reattachIfNeeded(node); err != nil {
		return at, err
	}
	if len(freq) == 0 {
		return at, nil
	}
	// Deterministic iteration order.
	keys := make([]chord.ID, 0, len(freq))
	for k := range freq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if s.cfg.SerialPublish {
		return s.installPostingsSerial(node, keys, freq, absolute, tc, at)
	}
	return s.installPostingsParallel(node, keys, freq, absolute, tc, at)
}

// installPostingsSerial is the legacy pipeline: keys resolved one blocking
// FindSuccessor at a time, then one PutBatch per owner, each waiting for
// the previous — the ingest critical path grows linearly with key count.
func (s *System) installPostingsSerial(node *StorageNode, keys []chord.ID, freq map[chord.ID]int, absolute bool, tc trace.TraceContext, at simnet.VTime) (simnet.VTime, error) {
	batches := map[simnet.Addr][]KeyFreq{}
	now := at
	// One closure per fabric method, reused across iterations (and retry
	// attempts), keeps the serial pipeline allocation-free; the captured
	// request state is re-pointed per iteration.
	var findReq chord.FindReq
	resolve := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return s.net.Call(node.addr, node.attached, chord.MethodFindSuccessor, findReq, at)
	}
	for ki, key := range keys {
		findReq = chord.FindReq{Target: key, TC: tc.Child(uint64(ki))}
		resp, done, err := simnet.Retry(simnet.DefaultAttempts, now, resolve)
		now = done
		if err != nil {
			return now, fmt.Errorf("overlay: resolve key %v: %w", key, err)
		}
		owner := resp.(chord.FindResp).Node.Addr
		batches[owner] = append(batches[owner], KeyFreq{Key: key, Freq: freq[key]})
	}
	owners := sortedOwners(batches)
	var shipTo simnet.Addr
	var shipReq PutBatchReq
	ship := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return s.net.Call(node.addr, shipTo, MethodPutBatch, shipReq, at)
	}
	for oi, owner := range owners {
		// Trace children for shipments start past the key indexes so resolve
		// and ship spans never collide.
		shipTo = owner
		shipReq = PutBatchReq{Node: node.addr, Entries: batches[owner], Absolute: absolute,
			Seq: s.nextPubSeq(), TC: tc.Child(uint64(len(keys) + oi))}
		_, done, err := simnet.Retry(simnet.DefaultAttempts, now, ship)
		now = done
		if err != nil {
			return now, fmt.Errorf("overlay: install postings at %s: %w", owner, err)
		}
	}
	return now, nil
}

// installPostingsParallel is the concurrent pipeline: owners for all keys
// not already in the storage node's successor-owner cache are resolved by
// one batched FindSuccessor (the ring fans the batch out along shared
// route prefixes), then every per-owner PutBatch ships in parallel. The
// virtual completion time is the critical path — resolution, then the max
// over the owner shipments — per the DESIGN §5 rule; batches whose keys
// were all cache hits ship immediately at `at`.
func (s *System) installPostingsParallel(node *StorageNode, keys []chord.ID, freq map[chord.ID]int, absolute bool, tc trace.TraceContext, at simnet.VTime) (simnet.VTime, error) {
	epoch := s.Epoch()
	owners := make(map[chord.ID]simnet.Addr, len(keys))
	viaRing := make(map[chord.ID]bool, len(keys))
	unresolved := make([]chord.ID, 0, len(keys))
	for _, key := range keys {
		if a, ok := node.CachedOwner(epoch, key); ok && s.net.Alive(a) {
			owners[key] = a
			continue
		}
		unresolved = append(unresolved, key)
	}
	resolveDone := at
	if len(unresolved) > 0 {
		resp, done, err := simnet.Retry(simnet.DefaultAttempts, at,
			func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
				return s.net.Call(node.addr, node.attached, chord.MethodFindSuccessorBatch,
					chord.BatchFindReq{Targets: unresolved, TC: tc.Child(0)}, at)
			})
		if err != nil {
			return done, fmt.Errorf("overlay: resolve %d keys: %w", len(unresolved), err)
		}
		learned := make(map[chord.ID]simnet.Addr, len(unresolved))
		for i, key := range unresolved {
			owner := resp.(chord.BatchFindResp).Nodes[i].Addr
			owners[key] = owner
			viaRing[key] = true
			learned[key] = owner
		}
		node.RememberOwners(epoch, learned)
		resolveDone = done
	}
	batches := map[simnet.Addr][]KeyFreq{}
	starts := map[simnet.Addr]simnet.VTime{}
	for _, key := range keys {
		owner := owners[key]
		batches[owner] = append(batches[owner], KeyFreq{Key: key, Freq: freq[key]})
		if _, ok := starts[owner]; !ok {
			starts[owner] = at
		}
		if viaRing[key] {
			starts[owner] = resolveDone
		}
	}
	ownerList := sortedOwners(batches)
	// Sequence numbers are allocated before the fan-out in sorted-owner
	// order, so their assignment does not depend on goroutine scheduling.
	seqs := make([]uint64, len(ownerList))
	for i := range ownerList {
		seqs[i] = s.nextPubSeq()
	}
	//adhoclint:faultpath(abort-all, every owner shipment must land; unreachable owners get one successor-fallback round below and any remaining failure aborts the publication, which the callers compensate)
	results, done := simnet.Parallel(len(ownerList), 0, func(i int) (simnet.Payload, simnet.VTime, error) {
		// Branch-index-derived contexts (seq 0 is the batch resolve above)
		// keep span identifiers deterministic under concurrent fan-out.
		owner := ownerList[i]
		req := PutBatchReq{Node: node.addr, Entries: batches[owner], Absolute: absolute,
			Seq: seqs[i], TC: tc.Child(uint64(i + 1))}
		return simnet.Retry(simnet.DefaultAttempts, starts[owner],
			func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
				return s.net.Call(node.addr, owner, MethodPutBatch, req, at)
			})
	})
	done = simnet.MaxTime(at, resolveDone, done)
	// Owners that died between resolution and shipment get one fallback
	// round: the ring has promoted their successors, so re-resolve the
	// affected keys and re-ship. Any other failure aborts the publication.
	stale := make([]simnet.Addr, 0, len(ownerList))
	for i, r := range results {
		if r.Err == nil {
			continue
		}
		if !errors.Is(r.Err, simnet.ErrUnreachable) {
			return done, fmt.Errorf("overlay: install postings at %s: %w", ownerList[i], r.Err)
		}
		stale = append(stale, ownerList[i])
	}
	if len(stale) == 0 {
		return done, nil
	}
	return s.reshipPostings(node, batches, stale, uint64(len(ownerList)+1), absolute, tc, done)
}

// reshipPostings is installPostingsParallel's successor-fallback round: the
// batches addressed to stale (now unreachable) owners are re-resolved with
// one batched FindSuccessor and re-shipped serially to whoever owns the
// keys now. tcBase offsets the trace children past the main round's.
func (s *System) reshipPostings(node *StorageNode, batches map[simnet.Addr][]KeyFreq, stale []simnet.Addr, tcBase uint64, absolute bool, tc trace.TraceContext, at simnet.VTime) (simnet.VTime, error) {
	node.DropOwnerCache()
	total := 0
	for _, owner := range stale {
		total += len(batches[owner])
	}
	entries := make([]KeyFreq, 0, total)
	for _, owner := range stale {
		entries = append(entries, batches[owner]...)
	}
	targets := make([]chord.ID, len(entries))
	for i, e := range entries {
		targets[i] = e.Key
	}
	if err := s.reattachIfNeeded(node); err != nil {
		return at, err
	}
	resp, now, err := simnet.Retry(simnet.DefaultAttempts, at,
		func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return s.net.Call(node.addr, node.attached, chord.MethodFindSuccessorBatch,
				chord.BatchFindReq{Targets: targets, TC: tc.Child(tcBase)}, at)
		})
	if err != nil {
		return now, fmt.Errorf("overlay: re-resolve %d keys: %w", len(targets), err)
	}
	regrouped := map[simnet.Addr][]KeyFreq{}
	for i, e := range entries {
		owner := resp.(chord.BatchFindResp).Nodes[i].Addr
		regrouped[owner] = append(regrouped[owner], e)
	}
	// One ship closure reused across owners keeps the fallback loop
	// allocation-free.
	var shipTo simnet.Addr
	var shipReq PutBatchReq
	ship := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return s.net.Call(node.addr, shipTo, MethodPutBatch, shipReq, at)
	}
	for oi, owner := range sortedOwners(regrouped) {
		shipTo = owner
		shipReq = PutBatchReq{Node: node.addr, Entries: regrouped[owner], Absolute: absolute,
			Seq: s.nextPubSeq(), TC: tc.Child(tcBase + 1 + uint64(oi))}
		_, done, err := simnet.Retry(simnet.DefaultAttempts, now, ship)
		now = done
		if err != nil {
			return now, fmt.Errorf("overlay: install postings at %s: %w", owner, err)
		}
	}
	return now, nil
}

func sortedOwners(batches map[simnet.Addr][]KeyFreq) []simnet.Addr {
	owners := make([]simnet.Addr, 0, len(batches))
	for a := range batches {
		owners = append(owners, a)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	return owners
}

// ResolveKey routes a key to its responsible index node starting from any
// node (storage nodes route via their attachment point, index nodes via
// themselves). It returns the owner address, the Chord hop count and the
// virtual completion time.
func (s *System) ResolveKey(from simnet.Addr, key chord.ID, at simnet.VTime) (simnet.Addr, int, simnet.VTime, error) {
	return s.ResolveKeyTraced(from, key, trace.TraceContext{}, at)
}

// ResolveKeyTraced is ResolveKey with the lookup's messages attributed to
// a trace: tc is the context of the FindSuccessor request itself.
func (s *System) ResolveKeyTraced(from simnet.Addr, key chord.ID, tc trace.TraceContext, at simnet.VTime) (simnet.Addr, int, simnet.VTime, error) {
	entry := s.entryFor(from)
	if entry == "" {
		return "", 0, at, fmt.Errorf("overlay: node %s has no ring entry point", from)
	}
	resp, done, err := simnet.Retry(simnet.DefaultAttempts, at,
		func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return s.net.Call(from, entry, chord.MethodFindSuccessor,
				chord.FindReq{Target: key, TC: tc}, at)
		})
	if err != nil {
		return "", 0, done, err
	}
	fr := resp.(chord.FindResp)
	return fr.Node.Addr, fr.Hops, done, nil
}

// entryFor returns the ring entry point for a node address: itself for an
// index node, the attachment point for a storage node, or any live index
// node otherwise (external query initiators).
//adhoclint:faultpath(benign, deterministic re-homing repair; re-running converges to the same attachment and a failed caller leaves the node validly re-homed)
func (s *System) entryFor(from simnet.Addr) simnet.Addr {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.index[from]; ok {
		return from
	}
	if st, ok := s.storage[from]; ok {
		if s.net.Alive(st.attached) {
			return st.attached
		}
		// the attachment point died: re-home to any live ring member
		addrs := make([]simnet.Addr, 0, len(s.index))
		for a := range s.index {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			if s.net.Alive(a) {
				st.attached = a
				st.DropOwnerCache()
				return a
			}
		}
		return ""
	}
	// External initiators enter at the smallest live index address — any
	// live member works, but the pick must not depend on map order.
	var entry simnet.Addr
	for a := range s.index {
		if s.net.Alive(a) && (entry == "" || a < entry) {
			entry = a
		}
	}
	return entry
}

func (s *System) anyIndexAddr() simnet.Addr {
	s.mu.RLock()
	defer s.mu.RUnlock()
	addrs := make([]simnet.Addr, 0, len(s.index))
	for a := range s.index {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if s.net.Alive(a) {
			return a
		}
	}
	return ""
}

// IndexNodes returns the index nodes sorted by ring identifier.
func (s *System) IndexNodes() []*IndexNode {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*IndexNode, 0, len(s.index))
	for _, n := range s.index {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// StorageNodes returns the storage nodes sorted by address.
func (s *System) StorageNodes() []*StorageNode {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*StorageNode, 0, len(s.storage))
	for _, n := range s.storage {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// Storage returns a storage node by address.
func (s *System) Storage(addr simnet.Addr) (*StorageNode, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.storage[addr]
	return n, ok
}

// Index returns an index node by address.
func (s *System) Index(addr simnet.Addr) (*IndexNode, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.index[addr]
	return n, ok
}

// Epoch returns the current stabilization epoch. Successor-owner cache
// entries are valid only within the epoch they were learned in: any
// maintenance or membership event that can move key ownership bumps the
// epoch (DESIGN §5).
func (s *System) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// bumpEpoch advances the stabilization epoch and flight-records the bump
// at the virtual time of the maintenance event that caused it (operator
// actions such as FailNode happen outside virtual time and pass 0).
func (s *System) bumpEpoch(at simnet.VTime, cause string) {
	s.mu.Lock()
	s.epoch++
	epoch := s.epoch
	s.mu.Unlock()
	if flt := s.net.FlightRecorder(); flt != nil {
		flt.Emit(flight.Event{Node: "system", Kind: flight.KindEpochBump,
			VT: int64(at), End: int64(at),
			Note: cause + " -> epoch " + strconv.FormatUint(epoch, 10)})
	}
}

// Converge runs Chord stabilization on the index ring until pointers are
// consistent and finger tables are fresh.
func (s *System) Converge(at simnet.VTime) simnet.VTime {
	done := chord.Converge(s.chordNodes(), at)
	s.bumpEpoch(done, "converge")
	return done
}

// StabilizeRound runs one periodic maintenance round on all live index
// nodes.
func (s *System) StabilizeRound(at simnet.VTime) simnet.VTime {
	done := chord.StabilizeRound(s.chordNodes(), at)
	s.bumpEpoch(done, "stabilize")
	return done
}

func (s *System) chordNodes() []*chord.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*chord.Node, 0, len(s.index))
	addrs := make([]simnet.Addr, 0, len(s.index))
	for a := range s.index {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		out = append(out, s.index[a].Chord)
	}
	return out
}

// FailNode crashes a node (index or storage) without warning. Ownership of
// the failed node's keys moves de facto (routing evicts it), so the
// stabilization epoch advances and owner caches re-resolve.
func (s *System) FailNode(addr simnet.Addr) {
	s.net.Fail(addr)
	if flt := s.net.FlightRecorder(); flt != nil {
		flt.Emit(flight.Event{Node: string(addr), Kind: flight.KindFail, Note: "operator"})
	}
	s.bumpEpoch(0, "fail "+string(addr))
}

// RecoverNode brings a crashed node back (and, because the node reclaims
// its key range, advances the stabilization epoch).
func (s *System) RecoverNode(addr simnet.Addr) {
	s.net.Recover(addr)
	if flt := s.net.FlightRecorder(); flt != nil {
		flt.Emit(flight.Event{Node: string(addr), Kind: flight.KindRecover, Note: "operator"})
	}
	s.bumpEpoch(0, "recover "+string(addr))
}

// RemoveIndexGraceful performs a clean index-node departure: location
// table handed to the successor, ring pointers rewired, node deregistered
// (Sect. III-D). The node leaves the deployment map before the handoff so
// no new traffic routes to it; a failed handoff reinstates it.
//adhoclint:faultpath(compensated, a failed departure handoff reinstates the node in the deployment, so it keeps serving its key range)
func (s *System) RemoveIndexGraceful(addr simnet.Addr, at simnet.VTime) (simnet.VTime, error) {
	s.mu.Lock()
	n, ok := s.index[addr]
	if ok {
		delete(s.index, addr)
	}
	s.mu.Unlock()
	if !ok {
		return at, fmt.Errorf("overlay: unknown index node %s", addr)
	}
	now, err := n.LeaveGraceful(at)
	if err != nil {
		s.mu.Lock()
		s.index[addr] = n
		s.mu.Unlock()
		return now, err
	}
	return s.Converge(now), nil
}

// DropStorageEverywhere removes a failed storage node's postings from all
// live index nodes — the global form of the timeout cleanup, used by tests
// and by churn experiments; during queries the cleanup happens lazily at
// the index node that observes the timeout. The drop notifications are
// broadcast from a live ring member to every live index node in parallel
// (the same fan-out machinery as publication), so the cleanup completes at
// the slowest branch, not the sum.
func (s *System) DropStorageEverywhere(addr simnet.Addr, at simnet.VTime) simnet.VTime {
	origin := s.anyIndexAddr()
	if origin == "" {
		return at
	}
	var targets []simnet.Addr
	for _, n := range s.IndexNodes() {
		if s.net.Alive(n.Addr()) {
			targets = append(targets, n.Addr())
		}
	}
	// Best-effort: an index node that became unreachable cleans up lazily.
	//adhoclint:faultpath(collect-partial, drop notifications are cleanup hints; an index node the broadcast misses drops the postings lazily on its own query timeout or on republish)
	_, done := simnet.Parallel(len(targets), 0, func(i int) (simnet.Payload, simnet.VTime, error) {
		return simnet.Retry(simnet.DefaultAttempts, at,
			func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
				return s.net.Call(origin, targets[i], MethodDropNode,
					DropNodeReq{Node: addr}, at)
			})
	})
	s.mu.Lock()
	delete(s.storage, addr)
	s.mu.Unlock()
	return simnet.MaxTime(at, done)
}

// TotalTriples sums the sizes of all storage-node graphs.
func (s *System) TotalTriples() int {
	total := 0
	for _, n := range s.StorageNodes() {
		total += n.TotalTriples()
	}
	return total
}

// TotalPostings sums the location-table postings across index nodes
// (replicas included).
func (s *System) TotalPostings() int {
	total := 0
	for _, n := range s.IndexNodes() {
		total += n.Table.Postings()
	}
	return total
}
