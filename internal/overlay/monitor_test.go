package overlay

// Mutation tests for the live invariant monitors: each test injects the
// exact corruption its monitor exists to catch and asserts a typed
// violation whose incident report names the offending nodes. A clean
// deployment must stay violation-free under every monitor.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"adhocshare/internal/chord"
	"adhocshare/internal/flight"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
)

// newMonitoredSystem builds a small adaptive deployment with monitors
// armed before publication, so the event stream covers the publish
// traffic too.
func newMonitoredSystem(t *testing.T, nIndex, nStorage int) (*System, *Monitors, simnet.VTime) {
	t.Helper()
	s := NewSystem(Config{Bits: 16, Replication: 2, Adaptive: true, HotThreshold: 2,
		Net: simnet.Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20}})
	now := simnet.VTime(0)
	for i := 0; i < nIndex; i++ {
		_, done, err := s.AddIndexNode(simnet.Addr(fmt.Sprintf("idx-%02d", i)), now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	now = s.Converge(now)
	mon := Arm(s, 64)
	for i := 0; i < nStorage; i++ {
		addr := simnet.Addr(fmt.Sprintf("D%02d", i))
		if _, done, err := s.AddStorageNode(addr, now); err != nil {
			t.Fatal(err)
		} else {
			now = done
		}
		done, err := s.Publish(addr, []rdf.Triple{
			{S: ex(fmt.Sprintf("alice%d", i)), P: fp("name"), O: rdf.NewLiteral("Alice Smith")},
			{S: ex(fmt.Sprintf("alice%d", i)), P: fp("knows"), O: ex("bob")},
		}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	return s, mon, now
}

func TestMonitorsCleanDeployment(t *testing.T) {
	_, mon, _ := newMonitoredSystem(t, 4, 3)
	if vs := mon.CheckAll(); len(vs) != 0 {
		t.Fatalf("clean deployment reported violations: %v", vs)
	}
	if mon.Recorder().Total() == 0 {
		t.Fatal("armed recorder captured no events over publication traffic")
	}
}

// requireViolation asserts that exactly the named monitor fired and that
// its incident report names every node in wantNodes.
func requireViolation(t *testing.T, mon *Monitors, vs []flight.Violation, monitor string, wantNodes ...string) {
	t.Helper()
	if len(vs) == 0 {
		t.Fatalf("monitor %s did not fire", monitor)
	}
	for _, v := range vs {
		if v.Monitor != monitor {
			t.Fatalf("unexpected monitor %s fired: %v", v.Monitor, v)
		}
	}
	inc := mon.Incident(monitor+" violation", vs, 8)
	var buf bytes.Buffer
	if err := inc.Write(&buf); err != nil {
		t.Fatalf("incident write: %v", err)
	}
	report := buf.String()
	if !strings.Contains(report, monitor) {
		t.Fatalf("incident report does not name monitor %s:\n%s", monitor, report)
	}
	for _, n := range wantNodes {
		if !strings.Contains(report, n) {
			t.Fatalf("incident report does not name offending node %s:\n%s", n, report)
		}
	}
}

func TestMonitorRingFiresOnPredecessorCorruption(t *testing.T) {
	s, mon, now := newMonitoredSystem(t, 4, 1)
	nodes := s.IndexNodes() // sorted by ring ID
	victim := nodes[1].Addr()
	bogus := nodes[3]
	// Deliver a hostile set_predecessor through the real fabric: nodes[1]
	// now claims nodes[3] as predecessor, so pred(succ(nodes[0])) is wrong.
	if _, _, err := s.Net().Call(bogus.Addr(), victim, chord.MethodSetPredecessor,
		chord.Ref{ID: bogus.ID(), Addr: bogus.Addr()}, now); err != nil {
		t.Fatal(err)
	}
	requireViolation(t, mon, mon.CheckRing(), flight.MonitorRing, string(victim))
}

func TestMonitorCoverageFiresOnDroppedRow(t *testing.T) {
	s, mon, _ := newMonitoredSystem(t, 4, 2)
	// Recompute one published key's home and drop the provider's posting.
	tr := rdf.Triple{S: ex("alice0"), P: fp("name"), O: rdf.NewLiteral("Alice Smith")}
	key := TripleKeys(tr, s.Config().Bits)[KeyP]
	owner := responsibleNode(mon.liveIndex(), key)
	owner.Table.Set(key, "D00", 0)
	requireViolation(t, mon, mon.CheckCoverage(), flight.MonitorCoverage, string(owner.Addr()), "D00")
}

func TestMonitorReplicaEpochFiresOnFutureEpoch(t *testing.T) {
	s, mon, now := newMonitoredSystem(t, 4, 1)
	holder := s.IndexNodes()[2]
	home := s.IndexNodes()[0]
	// Deliver a hot-replica push stamped 3 epochs ahead of the deployment.
	req := HotReplicaReq{Key: 42, Home: home.Addr(), Epoch: s.Epoch() + 3,
		Postings: []Posting{{Node: "D00", Freq: 1}}}
	if _, _, err := s.Net().Call(home.Addr(), holder.Addr(), MethodHotReplica, req, now); err != nil {
		t.Fatal(err)
	}
	requireViolation(t, mon, mon.CheckReplicaEpochs(), flight.MonitorReplicaEpoch, string(holder.Addr()))
}

func TestMonitorMonotonicFiresOnInvertedInterval(t *testing.T) {
	_, mon, _ := newMonitoredSystem(t, 3, 1)
	// An event delivered out of VTime order: its interval ends before it
	// starts.
	mon.Recorder().Emit(flight.Event{Node: "idx-00", Kind: flight.KindDeliver, VT: 1000, End: 500})
	vs := mon.Recorder().CheckMonotonic()
	requireViolation(t, mon, vs, flight.MonitorMonotonic, "idx-00")
}

func TestMonitorConservationFiresOnForgedDelivery(t *testing.T) {
	_, mon, _ := newMonitoredSystem(t, 3, 1)
	if vs := mon.CheckEvents(); len(vs) != 0 {
		t.Fatalf("pre-mutation event checks failed: %v", vs)
	}
	// A forged delivery event with no accounted message behind it breaks
	// sends = deliveries + losses.
	mon.Recorder().Emit(flight.Event{Node: "idx-00", Kind: flight.KindDeliver, VT: 1, End: 2})
	vs := mon.CheckEvents()
	requireViolation(t, mon, vs, flight.MonitorConservation)
}

func TestMonitorsSurviveChurnWithoutFalsePositives(t *testing.T) {
	s, mon, now := newMonitoredSystem(t, 5, 2)
	// Operator churn: fail a node, stabilize the ring around it, recover
	// it, stabilize again. Ring/coverage/epoch monitors must track the
	// repaired state without false positives.
	victim := s.IndexNodes()[2].Addr()
	s.FailNode(victim)
	for i := 0; i < 4; i++ {
		now = s.StabilizeRound(now)
	}
	if vs := mon.CheckRing(); len(vs) != 0 {
		t.Fatalf("ring monitor false positive after fail+stabilize: %v", vs)
	}
	s.RecoverNode(victim)
	now = s.Converge(now)
	if vs := mon.CheckRing(); len(vs) != 0 {
		t.Fatalf("ring monitor false positive after recover+converge: %v", vs)
	}
	if vs := mon.CheckEvents(); len(vs) != 0 {
		t.Fatalf("event monitors false positive under churn: %v", vs)
	}
	if mon.Recorder().Count(flight.KindFail) != 1 || mon.Recorder().Count(flight.KindRecover) != 1 {
		t.Fatalf("fail/recover events not recorded: %v", mon.Recorder().Counts())
	}
	if mon.Recorder().Count(flight.KindStabilize) == 0 {
		t.Fatal("no stabilize events recorded")
	}
	if mon.Recorder().Count(flight.KindEpochBump) == 0 {
		t.Fatal("no epoch-bump events recorded")
	}
}
