package overlay

// Live invariant monitors. The flight recorder (internal/flight) captures
// the event stream; the probes here inspect overlay state directly —
// ring pointer agreement, location-table coverage against published
// ground truth, hot-replica epoch coherence — and the event-stream checks
// (per-node VTime monotonicity, traffic conservation) are delegated to
// the recorder. All checks are read-only and deterministic: violations
// come out sorted, so same-seed runs report identical findings.

import (
	"fmt"
	"sort"

	"adhocshare/internal/chord"
	"adhocshare/internal/flight"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
)

// Monitors binds a deployment to a flight recorder and a traffic
// baseline, so conservation is checked over exactly the armed window.
type Monitors struct {
	sys      *System
	rec      *flight.Recorder
	baseMsgs int64
}

// Arm attaches a fresh flight recorder (ringSize events per node; ≤ 0 for
// the default) to the deployment's fabric and returns monitors bound to
// it. The traffic-conservation baseline is the fabric's accounted message
// count at arm time.
func Arm(sys *System, ringSize int) *Monitors {
	m := &Monitors{sys: sys, rec: flight.NewRecorder(ringSize)}
	m.baseMsgs = sys.Net().Metrics().Messages
	sys.Net().SetFlightRecorder(m.rec)
	return m
}

// Recorder returns the armed flight recorder.
func (m *Monitors) Recorder() *flight.Recorder { return m.rec }

// liveIndex returns the live index nodes sorted by ring identifier.
func (m *Monitors) liveIndex() []*IndexNode {
	var out []*IndexNode
	for _, n := range m.sys.IndexNodes() {
		if m.sys.Net().Alive(n.Addr()) {
			out = append(out, n)
		}
	}
	return out
}

// CheckRing verifies successor/predecessor agreement and that the
// successor chain starting at the smallest live node closes over every
// live index node (no orphaned keyspace). Single-node rings are trivially
// consistent.
func (m *Monitors) CheckRing() []flight.Violation {
	live := m.liveIndex()
	var out []flight.Violation
	if len(live) < 2 {
		return nil
	}
	byAddr := map[simnet.Addr]*IndexNode{}
	for _, n := range live {
		byAddr[n.Addr()] = n
	}
	for _, n := range live {
		succ := n.Chord.Successor()
		sn, ok := byAddr[succ.Addr]
		if !ok {
			out = append(out, flight.Violation{
				Monitor: flight.MonitorRing,
				Nodes:   []string{string(n.Addr())},
				Detail:  fmt.Sprintf("successor %s is not a live index node", succ.Addr),
			})
			continue
		}
		if pred := sn.Chord.Predecessor(); pred.Addr != n.Addr() {
			out = append(out, flight.Violation{
				Monitor: flight.MonitorRing,
				Nodes:   sortedNodes(string(n.Addr()), string(succ.Addr)),
				Detail:  fmt.Sprintf("pred(succ(%s)) = %q, want %s", n.Addr(), pred.Addr, n.Addr()),
			})
		}
	}
	// Orphan check: follow successor pointers from the smallest-ID live
	// node; every live node must be reached within len(live) hops.
	visited := map[simnet.Addr]bool{}
	cur := live[0]
	for i := 0; i < len(live) && cur != nil && !visited[cur.Addr()]; i++ {
		visited[cur.Addr()] = true
		cur = byAddr[cur.Chord.Successor().Addr]
	}
	var orphans []string
	for _, n := range live {
		if !visited[n.Addr()] {
			orphans = append(orphans, string(n.Addr()))
		}
	}
	if len(orphans) > 0 {
		sort.Strings(orphans)
		out = append(out, flight.Violation{
			Monitor: flight.MonitorRing,
			Nodes:   orphans,
			Detail:  fmt.Sprintf("%d live nodes orphaned from the successor cycle", len(orphans)),
		})
	}
	flight.SortViolations(out)
	return out
}

// CheckCoverage recomputes the published ground truth (every shared triple
// of every storage node, keyed like Publish/Republish) and verifies the
// responsible live index node holds a posting with exactly that frequency
// for each (key, provider).
func (m *Monitors) CheckCoverage() []flight.Violation {
	live := m.liveIndex()
	if len(live) == 0 {
		return nil
	}
	bits := m.sys.Config().Bits
	// truth[key][provider] = published frequency.
	truth := map[chord.ID]map[simnet.Addr]int{}
	for _, sn := range m.sys.StorageNodes() {
		count := func(g *rdf.Graph) {
			for _, t := range g.Triples() {
				for _, key := range TripleKeys(t, bits) {
					if truth[key] == nil {
						truth[key] = map[simnet.Addr]int{}
					}
					truth[key][sn.Addr()]++
				}
			}
		}
		count(sn.Graph)
		for _, name := range sn.GraphNames() {
			count(sn.NamedGraph(name))
		}
	}
	keys := make([]chord.ID, 0, len(truth))
	for k := range truth {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []flight.Violation
	for _, key := range keys {
		owner := responsibleNode(live, key)
		got := map[simnet.Addr]int{}
		for _, p := range owner.Table.Get(key) {
			got[p.Node] = p.Freq
		}
		providers := make([]simnet.Addr, 0, len(truth[key]))
		for p := range truth[key] {
			providers = append(providers, p)
		}
		sort.Slice(providers, func(i, j int) bool { return providers[i] < providers[j] })
		for _, p := range providers {
			want := truth[key][p]
			if got[p] != want {
				out = append(out, flight.Violation{
					Monitor: flight.MonitorCoverage,
					Nodes:   sortedNodes(string(owner.Addr()), string(p)),
					Detail:  fmt.Sprintf("key %v: owner %s has freq %d for provider %s, published %d", key, owner.Addr(), got[p], p, want),
				})
			}
		}
	}
	flight.SortViolations(out)
	return out
}

// responsibleNode returns the live index node owning the key: the first
// node (by ring identifier) with ID ≥ key, wrapping to the smallest.
// nodes must be sorted by ID and non-empty.
func responsibleNode(nodes []*IndexNode, key chord.ID) *IndexNode {
	for _, n := range nodes {
		if n.ID() >= key {
			return n
		}
	}
	return nodes[0]
}

// CheckReplicaEpochs verifies hot-replica coherence: no held copy is
// stamped ahead of the deployment epoch, and none is ahead of its home
// row's advertised epoch.
func (m *Monitors) CheckReplicaEpochs() []flight.Violation {
	epoch := m.sys.Epoch()
	var out []flight.Violation
	for _, holder := range m.sys.IndexNodes() {
		for _, held := range holder.HeldHotReplicas() {
			if held.Epoch > epoch {
				out = append(out, flight.Violation{
					Monitor: flight.MonitorReplicaEpoch,
					Nodes:   []string{string(holder.Addr())},
					Detail:  fmt.Sprintf("held replica of key %v at epoch %d ahead of deployment epoch %d", held.Key, held.Epoch, epoch),
				})
				continue
			}
			home, ok := m.sys.Index(held.Home)
			if !ok {
				continue
			}
			if homeEpoch, advertised := home.HotAdvertisedEpoch(held.Key); advertised && held.Epoch > homeEpoch {
				out = append(out, flight.Violation{
					Monitor: flight.MonitorReplicaEpoch,
					Nodes:   sortedNodes(string(holder.Addr()), string(held.Home)),
					Detail:  fmt.Sprintf("held replica of key %v at epoch %d ahead of home %s row epoch %d", held.Key, held.Epoch, held.Home, homeEpoch),
				})
			}
		}
	}
	flight.SortViolations(out)
	return out
}

// CheckEvents runs the event-stream monitors: per-node VTime monotonicity
// and traffic conservation (every accounted message leg since arming is a
// delivery, a recorded loss, or an unreachable mark).
func (m *Monitors) CheckEvents() []flight.Violation {
	out := m.rec.CheckMonotonic()
	delta := m.sys.Net().Metrics().Messages - m.baseMsgs
	out = append(out, m.rec.CheckConservation(delta)...)
	flight.SortViolations(out)
	return out
}

// CheckAll runs every monitor and returns the merged, sorted violations.
func (m *Monitors) CheckAll() []flight.Violation {
	var out []flight.Violation
	out = append(out, m.CheckEvents()...)
	out = append(out, m.CheckRing()...)
	out = append(out, m.CheckCoverage()...)
	out = append(out, m.CheckReplicaEpochs()...)
	flight.SortViolations(out)
	return out
}

// Incident builds a bounded causality report for the given violations
// (last lastN events of the implicated nodes, merged by VTime).
func (m *Monitors) Incident(title string, violations []flight.Violation, lastN int) *flight.Incident {
	return flight.BuildIncident(m.rec, title, violations, nil, lastN, 0, nil)
}

func sortedNodes(nodes ...string) []string {
	sort.Strings(nodes)
	return nodes
}
