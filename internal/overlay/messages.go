package overlay

import (
	"adhocshare/internal/chord"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/eval"
	"adhocshare/internal/trace"
)

// RPC method names. The "index." prefix marks two-level-index traffic, the
// "store." prefix marks sub-query execution traffic at storage nodes.
// Methods retried after lost messages declare why re-executing their
// handler is safe (the adhoclint faultpath idempotence cross-check);
// read-only handlers are proven side-effect-free by the analysis itself.
// index.transfer is deliberately NOT retried: its handler extracts rows
// destructively, so a reply-loss retry would observe an empty interval.
const (
	MethodPut = "index.put"
	//adhoclint:faultpath(idempotent, re-deliveries are suppressed by the per-publisher shipment sequence number, so relative frequency deltas apply exactly once)
	MethodPutBatch = "index.put_batch"
	//adhoclint:faultpath(idempotent, the read is side-effect-free and the adaptive tail only bumps an advisory decayed counter and re-pushes absolute hot-replica rows, so re-execution converges to the same state)
	MethodLookup   = "index.lookup"
	MethodTransfer = "index.transfer"
	MethodHandover = "index.handover"
	//adhoclint:faultpath(idempotent, dropping an already-dropped node's postings is a no-op; propagation re-sends converge the replicas to the same state)
	MethodDropNode = "index.drop_node"
	//adhoclint:faultpath(idempotent, replica sync replaces whole rows absolutely)
	MethodReplica = "index.replicate"
	//adhoclint:faultpath(idempotent, hot-replica installs replace the key's replica row absolutely and are epoch-stamped, so re-delivery converges to the same copy)
	MethodHotReplica = "index.hot_replica"
	//adhoclint:faultpath(idempotent, the read is side-effect-free except for deleting an epoch-stale replica entry, and re-deleting is a no-op)
	MethodHotLookup = "index.hot_lookup"

	MethodMatch    = "store.match"
	MethodChainHop = "store.chain"
	MethodCount    = "store.count"
	MethodDump     = "store.dump"
)

// intWidth is the wire width of an int field (frequency, count).
func intWidth(int) int { return 4 }

// boolWidth is the wire width of a boolean flag.
func boolWidth(bool) int { return 1 }

// PutReq installs (or retracts, with negative Freq) one posting.
type PutReq struct {
	Key  chord.ID
	Node simnet.Addr
	Freq int
}

// SizeBytes implements simnet.Payload.
func (r PutReq) SizeBytes() int { return r.Key.SizeBytes() + len(r.Node) + intWidth(r.Freq) }

// PutBatchReq installs several postings for one storage node in a single
// message — publication batches all keys routed to the same index node.
// With Absolute set, each entry's Freq replaces the stored frequency
// instead of incrementing it (idempotent re-publication after recovery).
type PutBatchReq struct {
	Node     simnet.Addr
	Entries  []KeyFreq
	Absolute bool
	// Seq is the publisher's shipment sequence number (0 = none). Index
	// nodes remember the highest sequence applied per publisher and drop
	// re-deliveries, so a batch retried after a lost reply — when the
	// handler already ran — never double-counts relative frequencies.
	Seq uint64
	TC  trace.TraceContext
}

// TraceCtx implements trace.Carrier.
func (r PutBatchReq) TraceCtx() trace.TraceContext { return r.TC }

// seqWidth is the wire width of a shipment sequence number.
func seqWidth(uint64) int { return 8 }

// KeyFreq is one (key, frequency-delta) pair of a batch.
type KeyFreq struct {
	Key  chord.ID
	Freq int
}

// SizeBytes implements simnet.Payload. Each entry is one (ID, int) pair.
func (r PutBatchReq) SizeBytes() int {
	return len(r.Node) + 12*len(r.Entries) + boolWidth(r.Absolute) + seqWidth(r.Seq) + r.TC.SizeBytes()
}

// LookupReq reads the location-table row for a key. Epoch, when non-zero,
// is the initiator's stabilization epoch and opts the request into the
// adaptive hot-key machinery: the home node counts the lookup and may
// advertise epoch-stamped replicas in the response. Static initiators send
// zero and the request is byte-identical to the pre-adaptive wire format.
type LookupReq struct {
	Key   chord.ID
	Epoch uint64
	TC    trace.TraceContext
}

// SizeBytes implements simnet.Payload.
func (r LookupReq) SizeBytes() int {
	n := r.Key.SizeBytes() + r.TC.SizeBytes()
	if r.Epoch != 0 {
		n += seqWidth(r.Epoch)
	}
	return n
}

// TraceCtx implements trace.Carrier.
func (r LookupReq) TraceCtx() trace.TraceContext { return r.TC }

// PostingsResp carries a location-table row. Replicas/Epoch are the
// adaptive hot-key advertisement: the addresses holding an epoch-stamped
// copy of the row, valid only while the initiator's epoch equals Epoch.
// Both stay zero on the static path, costing no wire bytes.
type PostingsResp struct {
	Postings []Posting
	Replicas []simnet.Addr
	Epoch    uint64
}

// SizeBytes implements simnet.Payload.
func (r PostingsResp) SizeBytes() int {
	n := 4
	for _, p := range r.Postings {
		n += p.SizeBytes()
	}
	for _, a := range r.Replicas {
		n += len(a)
	}
	if r.Epoch != 0 {
		n += seqWidth(r.Epoch)
	}
	return n
}

// HotReplicaReq pushes an absolute, epoch-stamped copy of a hot key's
// location-table row from its home successor to a ring-successor replica
// holder. Installs replace the previous copy wholesale, so re-delivery and
// re-execution converge; pushes are advisory fire-and-forget — a lost push
// merely leaves a replica that answers "miss" and the initiator falls back
// to the home successor.
type HotReplicaReq struct {
	Key      chord.ID
	Home     simnet.Addr
	Epoch    uint64
	Postings []Posting
	TC       trace.TraceContext
}

// SizeBytes implements simnet.Payload.
func (r HotReplicaReq) SizeBytes() int {
	n := r.Key.SizeBytes() + len(r.Home) + seqWidth(r.Epoch) + 4 + r.TC.SizeBytes()
	for _, p := range r.Postings {
		n += p.SizeBytes()
	}
	return n
}

// TraceCtx implements trace.Carrier.
func (r HotReplicaReq) TraceCtx() trace.TraceContext { return r.TC }

// HotLookupReq reads a hot key's replica row, valid only if the holder's
// stored copy carries exactly the requested epoch.
type HotLookupReq struct {
	Key   chord.ID
	Epoch uint64
	TC    trace.TraceContext
}

// SizeBytes implements simnet.Payload.
func (r HotLookupReq) SizeBytes() int {
	return r.Key.SizeBytes() + seqWidth(r.Epoch) + r.TC.SizeBytes()
}

// TraceCtx implements trace.Carrier.
func (r HotLookupReq) TraceCtx() trace.TraceContext { return r.TC }

// HotPostingsResp answers a replica read. Hit=false means the holder has
// no copy for the requested epoch (never pushed, or epoch-stale and now
// discarded) and the initiator must fall back to the home successor.
type HotPostingsResp struct {
	Hit      bool
	Postings []Posting
}

// SizeBytes implements simnet.Payload.
func (r HotPostingsResp) SizeBytes() int {
	n := boolWidth(r.Hit) + 4
	for _, p := range r.Postings {
		n += p.SizeBytes()
	}
	return n
}

// TransferReq asks the receiver to extract and return the location-table
// rows in the ring interval (From, To] — sent by a joining index node to
// its successor.
type TransferReq struct {
	From, To chord.ID
}

// SizeBytes implements simnet.Payload.
func (r TransferReq) SizeBytes() int { return r.From.SizeBytes() + r.To.SizeBytes() }

// TableRows carries location-table content (transfer, handover, replica
// sync).
//adhoclint:gobfallback maintenance-only map payload (transfer/handover/replica), never on a query hot path
type TableRows struct {
	Rows map[chord.ID][]Posting
}

// SizeBytes implements simnet.Payload.
func (t TableRows) SizeBytes() int {
	n := 4
	for _, row := range t.Rows {
		n += 8
		for _, p := range row {
			n += p.SizeBytes()
		}
	}
	return n
}

// DropNodeReq removes all postings of a (failed) storage node. With
// Propagate set, the receiving index node forwards the drop to its replica
// successors.
type DropNodeReq struct {
	Node      simnet.Addr
	Propagate bool
	TC        trace.TraceContext
}

// SizeBytes implements simnet.Payload.
func (r DropNodeReq) SizeBytes() int {
	return len(r.Node) + boolWidth(r.Propagate) + r.TC.SizeBytes()
}

// TraceCtx implements trace.Carrier.
func (r DropNodeReq) TraceCtx() trace.TraceContext { return r.TC }

// MatchReq asks a storage node to match a pattern conjunction against its
// local repository, joined with the accumulated partial solutions (the
// in-network aggregation of Sect. IV-C). Filter, when non-nil, is applied
// to the local matches before they are returned — the shipped form of the
// pushed-down FILTER of Sect. IV-G.
//adhoclint:gobfallback Filter is a sparql.Expression interface value; gob's registered concrete types carry it
type MatchReq struct {
	Patterns []rdf.Triple
	Filter   sparql.Expression
	Seeds    eval.Solutions
	// Dataset lists the FROM graph IRIs scoping the query's default graph
	// (nil = the union of everything each provider shares, Sect. IV-A).
	Dataset []string
	// Graph scopes the patterns to a named graph: an IRI term selects it,
	// a variable term iterates the provider's named graphs binding the
	// variable; the zero Term means the (dataset-scoped) default graph.
	Graph rdf.Term
	// FromNamed lists the FROM NAMED graph IRIs available to GRAPH
	// patterns (nil with a non-nil Dataset = none; nil with nil Dataset =
	// every named graph the provider shares).
	FromNamed []string
	// TC carries trace causality (wire-immutable, zero modeled bytes).
	TC trace.TraceContext
}

// TraceCtx implements trace.Carrier.
func (r MatchReq) TraceCtx() trace.TraceContext { return r.TC }

// SizeBytes implements simnet.Payload.
func (r MatchReq) SizeBytes() int {
	n := 8 + r.TC.SizeBytes()
	for _, p := range r.Patterns {
		n += p.SizeBytes()
	}
	if r.Filter != nil {
		n += len(r.Filter.String())
	}
	n += r.Seeds.SizeBytes()
	for _, g := range r.Dataset {
		n += len(g)
	}
	if !r.Graph.IsZero() {
		n += r.Graph.SizeBytes()
	}
	for _, g := range r.FromNamed {
		n += len(g)
	}
	return n
}

// SolutionsResp carries a solution multiset between nodes.
type SolutionsResp struct {
	Sols eval.Solutions
	TC   trace.TraceContext
}

// SizeBytes implements simnet.Payload.
func (r SolutionsResp) SizeBytes() int { return r.Sols.SizeBytes() + r.TC.SizeBytes() }

// TraceCtx implements trace.Carrier.
func (r SolutionsResp) TraceCtx() trace.TraceContext { return r.TC }

// CountReq asks a storage node how many triples match a pattern.
type CountReq struct {
	Pattern rdf.Triple
}

// SizeBytes implements simnet.Payload.
func (r CountReq) SizeBytes() int { return r.Pattern.SizeBytes() }

// CountResp carries a match count.
type CountResp struct {
	N int
}

// SizeBytes implements simnet.Payload.
func (r CountResp) SizeBytes() int { return intWidth(r.N) }

// TriplesResp carries raw triples (used by DESCRIBE and by the RDFPeers
// ingest comparison).
type TriplesResp struct {
	Triples []rdf.Triple
}

// SizeBytes implements simnet.Payload.
func (r TriplesResp) SizeBytes() int {
	n := 4
	for _, t := range r.Triples {
		n += t.SizeBytes()
	}
	return n
}
