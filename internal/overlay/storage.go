package overlay

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"adhocshare/internal/chord"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/eval"
)

// StorageNode is a data provider: it keeps its own RDF triples in a local
// graph (the ad-hoc sharing premise of Sect. I), attaches to one index
// node, and answers sub-queries shipped to it by the distributed query
// processor.
//
// A provider holds one default graph plus any number of named graphs
// (Sect. IV-A datasets). With no FROM clause a query sees the union of
// everything the provider shares; FROM clauses select the merge of the
// listed graphs as the query's default graph.
type StorageNode struct {
	// Graph is the provider's default graph.
	Graph *rdf.Graph

	net      *simnet.Network
	addr     simnet.Addr
	attached simnet.Addr // the index node this storage node hangs off

	mu    sync.Mutex
	named map[string]*rdf.Graph // named graphs by IRI
	views map[string]*rdf.Graph // memoized dataset merges, reset on writes
	// ownerCache memoizes key → successor owner learned while publishing —
	// the storage-side sibling of the dqp initiator cache (E14). Entries
	// are valid only for ownerEpoch; see System.Epoch for the rule.
	ownerCache map[chord.ID]simnet.Addr
	ownerEpoch uint64
}

// NewStorageNode creates a storage node and registers it on the network.
func NewStorageNode(net *simnet.Network, addr simnet.Addr, attached simnet.Addr) *StorageNode {
	s := &StorageNode{
		Graph:    rdf.NewGraph(),
		net:      net,
		addr:     addr,
		attached: attached,
		named:    map[string]*rdf.Graph{},
		views:    map[string]*rdf.Graph{},
	}
	net.Register(addr, simnet.HandlerFunc(s.HandleCall))
	return s
}

// Addr returns the node's network address.
func (s *StorageNode) Addr() simnet.Addr { return s.addr }

// AttachedTo returns the index node this storage node attaches to.
func (s *StorageNode) AttachedTo() simnet.Addr { return s.attached }

// NamedGraph returns (creating on demand) the provider's named graph for
// the given IRI and invalidates memoized dataset views.
//adhoclint:faultpath(benign, creates an empty graph on demand and resets memoized views; re-running yields identical state)
func (s *StorageNode) NamedGraph(iri string) *rdf.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.named[iri]
	if !ok {
		g = rdf.NewGraph()
		s.named[iri] = g
	}
	s.views = map[string]*rdf.Graph{}
	return g
}

// GraphNames lists the provider's named graphs, sorted.
func (s *StorageNode) GraphNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.named))
	for n := range s.named {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CachedOwner returns the successor owner cached for the key, provided it
// was learned in the given stabilization epoch; older entries are treated
// as absent (ownership may have moved).
func (s *StorageNode) CachedOwner(epoch uint64, key chord.ID) (simnet.Addr, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ownerEpoch != epoch || s.ownerCache == nil {
		return "", false
	}
	a, ok := s.ownerCache[key]
	return a, ok
}

// RememberOwners records key → owner mappings learned in the given epoch,
// discarding anything cached under an older epoch first.
func (s *StorageNode) RememberOwners(epoch uint64, owners map[chord.ID]simnet.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ownerEpoch != epoch || s.ownerCache == nil {
		s.ownerCache = make(map[chord.ID]simnet.Addr, len(owners))
		s.ownerEpoch = epoch
	}
	for k, a := range owners {
		s.ownerCache[k] = a
	}
}

// OwnerCacheLen reports how many key → owner entries are cached (tests and
// the E2 notes).
func (s *StorageNode) OwnerCacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ownerCache)
}

// DropOwnerCache clears the successor-owner cache; the overlay calls it
// when the node re-attaches to a different index node.
//adhoclint:faultpath(benign, cache invalidation; a failure afterwards leaves a cold cache the next lookup refills)
func (s *StorageNode) DropOwnerCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ownerCache = nil
}

// InvalidateViews drops memoized dataset merges; the overlay calls it
// after publications and retractions.
func (s *StorageNode) InvalidateViews() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.views = map[string]*rdf.Graph{}
}

// TotalTriples counts the provider's triples across all graphs.
func (s *StorageNode) TotalTriples() int {
	n := s.Graph.Size()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.named {
		n += g.Size()
	}
	return n
}

// datasetGraph returns the graph a query's dataset clause selects at this
// provider: with no FROM graphs (nil), the union of everything the
// provider shares (the paper's Sect. IV-A default); otherwise the merge of
// the listed named graphs. Merged views are memoized until the next write.
//adhoclint:faultpath(benign, memoized view fill; recomputation writes the same merged graph)
func (s *StorageNode) datasetGraph(dataset []string) *rdf.Graph {
	s.mu.Lock()
	if len(dataset) == 0 && len(s.named) == 0 {
		s.mu.Unlock()
		return s.Graph
	}
	key := strings.Join(dataset, "\x00")
	if g, ok := s.views[key]; ok {
		s.mu.Unlock()
		return g
	}
	s.mu.Unlock()

	merged := rdf.NewGraph()
	if len(dataset) == 0 {
		merged.AddAll(s.Graph.Triples())
		s.mu.Lock()
		for _, g := range s.named {
			merged.AddAll(g.Triples())
		}
		s.mu.Unlock()
	} else {
		for _, iri := range dataset {
			s.mu.Lock()
			g, ok := s.named[iri]
			s.mu.Unlock()
			if ok {
				merged.AddAll(g.Triples())
			}
		}
	}
	s.mu.Lock()
	s.views[key] = merged
	s.mu.Unlock()
	return merged
}

// HandleCall serves storage-node sub-query methods.
func (s *StorageNode) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	switch method {
	case MethodMatch:
		r, ok := req.(MatchReq)
		if !ok {
			return nil, at, fmt.Errorf("overlay: match payload %T", req)
		}
		return SolutionsResp{Sols: s.LocalMatchScope(r.Patterns, r.Filter, r.Seeds, r.Dataset, r.FromNamed, r.Graph)}, at, nil
	case MethodChainHop:
		// Pure data arrival in a forwarding chain; the local evaluation is
		// performed via LocalMatch by the chain driver. Acknowledge only.
		return simnet.Bytes(1), at, nil
	case MethodCount:
		r, ok := req.(CountReq)
		if !ok {
			return nil, at, fmt.Errorf("overlay: count payload %T", req)
		}
		return CountResp{N: s.datasetGraph(nil).CountMatch(r.Pattern)}, at, nil
	case MethodDump:
		r, ok := req.(CountReq) // reuse: dump triples matching a pattern
		if !ok {
			return nil, at, fmt.Errorf("overlay: dump payload %T", req)
		}
		return TriplesResp{Triples: s.datasetGraph(nil).Match(r.Pattern)}, at, nil
	default:
		return nil, at, fmt.Errorf("overlay: storage node %s: unknown method %s", s.addr, method)
	}
}

// LocalMatch evaluates a pattern conjunction against the provider's full
// shared dataset (default plus named graphs).
func (s *StorageNode) LocalMatch(patterns []rdf.Triple, filter sparql.Expression, seeds eval.Solutions) eval.Solutions {
	return s.LocalMatchDataset(patterns, filter, seeds, nil)
}

// LocalMatchDataset evaluates a pattern conjunction against the dataset
// selected by the query's FROM clause: each seed partial solution is
// extended by the local matches (in-network aggregation), then the
// optional pushed-down filter is applied. A nil seed set means the unit
// seed.
func (s *StorageNode) LocalMatchDataset(patterns []rdf.Triple, filter sparql.Expression, seeds eval.Solutions, dataset []string) eval.Solutions {
	if seeds == nil {
		seeds = eval.Solutions{eval.NewBinding()}
	}
	sols := eval.EvalBGP(s.datasetGraph(dataset), patterns, seeds)
	if filter != nil {
		sols = eval.FilterSolutions(sols, filter)
	}
	return sols
}

// LocalMatchScope additionally honours a GRAPH scope: a zero graph term
// matches the dataset-scoped default graph; an IRI term matches that named
// graph only; a variable term iterates the named graphs available to GRAPH
// patterns (fromNamed when given, none when a FROM clause restricted the
// dataset, otherwise every named graph the provider shares) and binds the
// variable to each graph's IRI.
func (s *StorageNode) LocalMatchScope(patterns []rdf.Triple, filter sparql.Expression, seeds eval.Solutions, dataset, fromNamed []string, graph rdf.Term) eval.Solutions {
	if graph.IsZero() {
		return s.LocalMatchDataset(patterns, filter, seeds, dataset)
	}
	if seeds == nil {
		seeds = eval.Solutions{eval.NewBinding()}
	}
	names := s.graphsForGraphPatterns(dataset, fromNamed)
	var out eval.Solutions
	if !graph.IsVar() {
		if !containsString(names, graph.Value) {
			return nil
		}
		s.mu.Lock()
		g := s.named[graph.Value]
		s.mu.Unlock()
		if g == nil {
			return nil
		}
		out = eval.EvalBGP(g, patterns, seeds)
	} else {
		varName := graph.Value
		for _, iri := range names {
			s.mu.Lock()
			g := s.named[iri]
			s.mu.Unlock()
			if g == nil {
				continue
			}
			gTerm := rdf.NewIRI(iri)
			for _, b := range eval.EvalBGP(g, patterns, seeds) {
				if old, bound := b[varName]; bound {
					if old != gTerm {
						continue
					}
					out = append(out, b)
					continue
				}
				nb := b.Clone()
				nb[varName] = gTerm
				out = append(out, nb)
			}
		}
	}
	if filter != nil {
		out = eval.FilterSolutions(out, filter)
	}
	return out
}

// graphsForGraphPatterns lists the named graphs GRAPH may range over at
// this provider, per the W3C dataset rules adapted to the ad-hoc default.
func (s *StorageNode) graphsForGraphPatterns(dataset, fromNamed []string) []string {
	if len(fromNamed) > 0 {
		return fromNamed
	}
	if len(dataset) > 0 {
		// an explicit FROM without FROM NAMED leaves no named graphs
		return nil
	}
	return s.GraphNames()
}

func containsString(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
