package overlay

import (
	"fmt"
	"strings"
	"sync"

	"adhocshare/internal/chord"
	"adhocshare/internal/simnet"
	"adhocshare/internal/trace"
)

// IndexNode is a ring member willing to host index entries for others
// (Sect. III-A). It embeds a Chord node for routing and owns a location
// table; it also holds replica rows for its predecessors so that the
// system survives index-node failures (Sect. III-D).
type IndexNode struct {
	Chord *chord.Node
	Table *LocationTable

	net         *simnet.Network
	addr        simnet.Addr
	replication int

	// seqMu guards lastSeq: the highest PutBatchReq.Seq applied per
	// publisher. A batch re-delivered after a lost reply carries the same
	// sequence and is acknowledged without re-applying, which is what makes
	// put_batch safe to retry even for relative (incrementing) frequencies.
	seqMu   sync.Mutex
	lastSeq map[simnet.Addr]uint64

	// hotMu guards hot: EnableAdaptive installs the detector with a plain
	// pointer store, and under concurrent delivery a handler may already
	// be serving a lookup on another goroutine. Readers take the pointer
	// through hotRef; hotState's own fields are guarded by its leaf mu.
	hotMu sync.Mutex
	// hot is the workload-adaptive hot-key state (nil unless
	// EnableAdaptive ran; see hot.go).
	hot *hotState
}

// hotRef snapshots the adaptive-state pointer (nil = detector off).
func (n *IndexNode) hotRef() *hotState {
	n.hotMu.Lock()
	defer n.hotMu.Unlock()
	return n.hot
}

// NewIndexNode creates an index node with the given ring identifier and
// registers it on the network. replication is the number of copies of each
// posting (1 = primary only).
func NewIndexNode(net *simnet.Network, addr simnet.Addr, id chord.ID, cfg chord.Config, replication int) *IndexNode {
	if replication < 1 {
		replication = 1
	}
	n := &IndexNode{
		Chord:       chord.NewNode(net, addr, id, cfg),
		Table:       NewLocationTable(),
		net:         net,
		addr:        addr,
		replication: replication,
		lastSeq:     make(map[simnet.Addr]uint64),
	}
	net.Register(addr, simnet.HandlerFunc(n.HandleCall))
	return n
}

// Addr returns the node's network address.
func (n *IndexNode) Addr() simnet.Addr { return n.addr }

// ID returns the node's ring identifier.
func (n *IndexNode) ID() chord.ID { return n.Chord.ID() }

// HandleCall dispatches index methods and delegates "chord." methods to
// the embedded ring member.
func (n *IndexNode) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	if strings.HasPrefix(method, "chord.") {
		return n.Chord.HandleCall(at, method, req)
	}
	switch method {
	case MethodPut:
		r, ok := req.(PutReq)
		if !ok {
			return nil, at, fmt.Errorf("overlay: put payload %T", req)
		}
		n.Table.Add(r.Key, r.Node, r.Freq)
		resp, now, err := n.replicate(at, map[chord.ID][]Posting{r.Key: n.Table.Get(r.Key)})
		n.refreshHot([]chord.ID{r.Key}, trace.TraceContext{}, now)
		return resp, now, err
	case MethodReplica:
		r, ok := req.(TableRows)
		if !ok {
			return nil, at, fmt.Errorf("overlay: replicate payload %T", req)
		}
		n.Table.Replace(r.Rows)
		return simnet.Bytes(1), at, nil
	case MethodPutBatch:
		r, ok := req.(PutBatchReq)
		if !ok {
			return nil, at, fmt.Errorf("overlay: put_batch payload %T", req)
		}
		if r.Seq != 0 && n.seenSeq(r.Node, r.Seq) {
			return simnet.Bytes(1), at, nil
		}
		rows := make(map[chord.ID][]Posting, len(r.Entries))
		keys := make([]chord.ID, 0, len(r.Entries))
		for _, e := range r.Entries {
			if r.Absolute {
				n.Table.Set(e.Key, r.Node, e.Freq)
			} else {
				n.Table.Add(e.Key, r.Node, e.Freq)
			}
			rows[e.Key] = n.Table.Get(e.Key)
			keys = append(keys, e.Key)
		}
		resp, now, err := n.replicate(at, rows)
		n.refreshHot(keys, r.TC, now)
		return resp, now, err
	case MethodLookup:
		r, ok := req.(LookupReq)
		if !ok {
			return nil, at, fmt.Errorf("overlay: lookup payload %T", req)
		}
		resp := PostingsResp{Postings: n.Table.Get(r.Key)}
		if h := n.hotRef(); h != nil && r.Epoch != 0 {
			resp.Replicas, resp.Epoch = n.adaptiveTail(h, r.Key, resp.Postings, r.Epoch, r.TC, at)
		}
		return resp, at, nil
	case MethodHotReplica:
		r, ok := req.(HotReplicaReq)
		if !ok {
			return nil, at, fmt.Errorf("overlay: hot_replica payload %T", req)
		}
		n.storeHotReplica(r)
		return simnet.Bytes(1), at, nil
	case MethodHotLookup:
		r, ok := req.(HotLookupReq)
		if !ok {
			return nil, at, fmt.Errorf("overlay: hot_lookup payload %T", req)
		}
		ps, hit := n.readHotReplica(r.Key, r.Epoch, at)
		return HotPostingsResp{Hit: hit, Postings: ps}, at, nil
	case MethodTransfer:
		r, ok := req.(TransferReq)
		if !ok {
			return nil, at, fmt.Errorf("overlay: transfer payload %T", req)
		}
		rows := n.Table.ExtractRange(r.From, r.To)
		return TableRows{Rows: rows}, at, nil
	case MethodHandover:
		r, ok := req.(TableRows)
		if !ok {
			return nil, at, fmt.Errorf("overlay: handover payload %T", req)
		}
		n.Table.Merge(r.Rows)
		return simnet.Bytes(1), at, nil
	case MethodDropNode:
		r, ok := req.(DropNodeReq)
		if !ok {
			return nil, at, fmt.Errorf("overlay: drop_node payload %T", req)
		}
		n.Table.DropNode(r.Node)
		n.refreshHot(nil, r.TC, at)
		now := at
		if r.Propagate && n.replication > 1 {
			sent := 0
			// One forwarding closure reused across successors keeps the
			// propagation loop allocation-free.
			var fwdTo simnet.Addr
			var fwdReq DropNodeReq
			forward := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
				return n.net.Call(n.addr, fwdTo, MethodDropNode, fwdReq, at)
			}
			for _, succ := range n.Chord.SuccessorList() {
				if sent >= n.replication-1 {
					break
				}
				if succ.Addr == n.addr {
					continue
				}
				fwdTo = succ.Addr
				fwdReq = DropNodeReq{Node: r.Node, TC: r.TC.Child(uint64(sent + 1))}
				_, done, err := simnet.Retry(simnet.DefaultAttempts, now, forward)
				now = done
				if err == nil {
					sent++
				}
			}
		}
		return simnet.Bytes(1), now, nil
	default:
		return nil, at, fmt.Errorf("overlay: index node %s: unknown method %s", n.addr, method)
	}
}

// seenSeq records seq as applied for publisher node and reports whether it
// had already been applied (a retried shipment whose reply was lost).
func (n *IndexNode) seenSeq(node simnet.Addr, seq uint64) bool {
	n.seqMu.Lock()
	defer n.seqMu.Unlock()
	if seq <= n.lastSeq[node] {
		return true
	}
	n.lastSeq[node] = seq
	return false
}

// replicate pushes updated rows to the next replication−1 live successors
// so the ring survives index-node failures (Sect. III-D's replication
// policy). Replication is synchronous and best-effort: a replica that stays
// unreachable after retries is skipped — its rows converge on the next
// update — so the primary's ack never blocks on a dead successor.
func (n *IndexNode) replicate(at simnet.VTime, rows map[chord.ID][]Posting) (simnet.Payload, simnet.VTime, error) {
	now := at
	if n.replication > 1 {
		sent := 0
		// One sync closure reused across successors keeps the replication
		// loop allocation-free.
		var syncTo simnet.Addr
		sync := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return n.net.Call(n.addr, syncTo, MethodReplica, TableRows{Rows: rows}, at)
		}
		for _, succ := range n.Chord.SuccessorList() {
			if sent >= n.replication-1 {
				break
			}
			if succ.Addr == n.addr {
				continue
			}
			syncTo = succ.Addr
			_, done, err := simnet.Retry(simnet.DefaultAttempts, now, sync)
			now = done
			if err == nil {
				sent++
			}
		}
	}
	return simnet.Bytes(1), now, nil
}

// JoinTransfer pulls the location-table rows the node is now responsible
// for from its successor: keys in (pred, self] (Sect. III-C). Call after
// the ring has stabilized around the new node.
func (n *IndexNode) JoinTransfer(at simnet.VTime) (simnet.VTime, error) {
	succ := n.Chord.Successor()
	if succ.Addr == n.addr {
		return at, nil
	}
	pred := n.Chord.Predecessor()
	from := pred.ID
	if pred.IsZero() {
		// Without a predecessor yet, claim everything up to our own id
		// that the successor does not own.
		from = succ.ID
	}
	resp, done, err := n.net.Call(n.addr, succ.Addr, MethodTransfer,
		TransferReq{From: from, To: n.ID()}, at)
	if err != nil {
		return done, fmt.Errorf("overlay: join transfer: %w", err)
	}
	n.Table.Merge(resp.(TableRows).Rows)
	return done, nil
}

// LeaveGraceful hands the whole location table to the successor and
// retires from the ring (Sect. III-D).
func (n *IndexNode) LeaveGraceful(at simnet.VTime) (simnet.VTime, error) {
	succ := n.Chord.Successor()
	now := at
	if succ.Addr != n.addr {
		rows := n.Table.Snapshot()
		if len(rows) > 0 {
			_, done, err := n.net.Call(n.addr, succ.Addr, MethodHandover, TableRows{Rows: rows}, now)
			now = done
			if err != nil {
				return now, fmt.Errorf("overlay: handover: %w", err)
			}
		}
	}
	now = n.Chord.Leave(now)
	n.net.Deregister(n.addr)
	return now, nil
}
