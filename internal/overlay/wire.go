package overlay

import (
	"adhocshare/internal/chord"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/wirebin"
)

// Binary wire form of the overlay index/store payloads. The publication
// (PutBatch) and lookup families are the index hot path; the adhoclint
// codec rule cross-checks that every field below stays covered, and the
// AllocsPerRun guards in internal/dqp pin the encode/decode costs.
// MatchReq and TableRows stay on the gob fallback: the former carries a
// sparql.Expression interface value, the latter a maintenance-only map.

// EncodeBinary appends the request's binary wire form to dst.
func (r PutReq) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(r.Key))
	dst = wirebin.AppendString(dst, string(r.Node))
	return wirebin.AppendInt(dst, r.Freq)
}

// DecodeBinary consumes one request from b and returns the rest.
func (r *PutReq) DecodeBinary(b []byte) ([]byte, error) {
	key, b, err := wirebin.Uvarint(b)
	if err != nil {
		return b, err
	}
	r.Key = chord.ID(key)
	node, b, err := wirebin.String(b)
	if err != nil {
		return b, err
	}
	r.Node = simnet.Addr(node)
	r.Freq, b, err = wirebin.Int(b)
	return b, err
}

// EncodeBinary appends the batch request's binary wire form to dst.
func (r PutBatchReq) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendString(dst, string(r.Node))
	dst = wirebin.AppendUvarint(dst, uint64(len(r.Entries)))
	for _, e := range r.Entries {
		dst = wirebin.AppendUvarint(dst, uint64(e.Key))
		dst = wirebin.AppendInt(dst, e.Freq)
	}
	dst = wirebin.AppendBool(dst, r.Absolute)
	dst = wirebin.AppendUvarint(dst, r.Seq)
	return r.TC.EncodeBinary(dst)
}

// DecodeBinary consumes one batch request from b and returns the rest.
func (r *PutBatchReq) DecodeBinary(b []byte) ([]byte, error) {
	node, b, err := wirebin.String(b)
	if err != nil {
		return b, err
	}
	r.Node = simnet.Addr(node)
	n, b, err := wirebin.Len(b)
	if err != nil {
		return b, err
	}
	r.Entries = nil
	if n > 0 {
		r.Entries = make([]KeyFreq, n)
		for i := range r.Entries {
			var key uint64
			if key, b, err = wirebin.Uvarint(b); err != nil {
				return b, err
			}
			r.Entries[i].Key = chord.ID(key)
			if r.Entries[i].Freq, b, err = wirebin.Int(b); err != nil {
				return b, err
			}
		}
	}
	if r.Absolute, b, err = wirebin.Bool(b); err != nil {
		return b, err
	}
	if r.Seq, b, err = wirebin.Uvarint(b); err != nil {
		return b, err
	}
	b, err = r.TC.DecodeBinary(b)
	return b, err
}

// EncodeBinary appends the lookup request's binary wire form to dst.
func (r LookupReq) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(r.Key))
	dst = wirebin.AppendUvarint(dst, r.Epoch)
	return r.TC.EncodeBinary(dst)
}

// DecodeBinary consumes one lookup request from b and returns the rest.
func (r *LookupReq) DecodeBinary(b []byte) ([]byte, error) {
	key, b, err := wirebin.Uvarint(b)
	if err != nil {
		return b, err
	}
	r.Key = chord.ID(key)
	if r.Epoch, b, err = wirebin.Uvarint(b); err != nil {
		return b, err
	}
	b, err = r.TC.DecodeBinary(b)
	return b, err
}

// appendPostings appends a postings row (count-prefixed) to dst.
func appendPostings(dst []byte, ps []Posting) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(len(ps)))
	for _, p := range ps {
		dst = wirebin.AppendString(dst, string(p.Node))
		dst = wirebin.AppendInt(dst, p.Freq)
	}
	return dst
}

// decodePostings consumes a count-prefixed postings row from b.
func decodePostings(b []byte) ([]Posting, []byte, error) {
	n, b, err := wirebin.Len(b)
	if err != nil {
		return nil, b, err
	}
	var ps []Posting
	if n > 0 {
		ps = make([]Posting, n)
		for i := range ps {
			var node string
			if node, b, err = wirebin.String(b); err != nil {
				return nil, b, err
			}
			ps[i].Node = simnet.Addr(node)
			if ps[i].Freq, b, err = wirebin.Int(b); err != nil {
				return nil, b, err
			}
		}
	}
	return ps, b, nil
}

// EncodeBinary appends the postings row's binary wire form to dst.
func (r PostingsResp) EncodeBinary(dst []byte) []byte {
	dst = appendPostings(dst, r.Postings)
	dst = wirebin.AppendUvarint(dst, uint64(len(r.Replicas)))
	for _, a := range r.Replicas {
		dst = wirebin.AppendString(dst, string(a))
	}
	return wirebin.AppendUvarint(dst, r.Epoch)
}

// DecodeBinary consumes one postings row from b and returns the rest.
func (r *PostingsResp) DecodeBinary(b []byte) ([]byte, error) {
	ps, b, err := decodePostings(b)
	if err != nil {
		return b, err
	}
	r.Postings = ps
	n, b, err := wirebin.Len(b)
	if err != nil {
		return b, err
	}
	r.Replicas = nil
	if n > 0 {
		r.Replicas = make([]simnet.Addr, n)
		for i := range r.Replicas {
			var a string
			if a, b, err = wirebin.String(b); err != nil {
				return b, err
			}
			r.Replicas[i] = simnet.Addr(a)
		}
	}
	r.Epoch, b, err = wirebin.Uvarint(b)
	return b, err
}

// EncodeBinary appends the hot-replica push's binary wire form to dst.
func (r HotReplicaReq) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(r.Key))
	dst = wirebin.AppendString(dst, string(r.Home))
	dst = wirebin.AppendUvarint(dst, r.Epoch)
	dst = appendPostings(dst, r.Postings)
	return r.TC.EncodeBinary(dst)
}

// DecodeBinary consumes one hot-replica push from b and returns the rest.
func (r *HotReplicaReq) DecodeBinary(b []byte) ([]byte, error) {
	key, b, err := wirebin.Uvarint(b)
	if err != nil {
		return b, err
	}
	r.Key = chord.ID(key)
	home, b, err := wirebin.String(b)
	if err != nil {
		return b, err
	}
	r.Home = simnet.Addr(home)
	if r.Epoch, b, err = wirebin.Uvarint(b); err != nil {
		return b, err
	}
	if r.Postings, b, err = decodePostings(b); err != nil {
		return b, err
	}
	b, err = r.TC.DecodeBinary(b)
	return b, err
}

// EncodeBinary appends the replica read's binary wire form to dst.
func (r HotLookupReq) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(r.Key))
	dst = wirebin.AppendUvarint(dst, r.Epoch)
	return r.TC.EncodeBinary(dst)
}

// DecodeBinary consumes one replica read from b and returns the rest.
func (r *HotLookupReq) DecodeBinary(b []byte) ([]byte, error) {
	key, b, err := wirebin.Uvarint(b)
	if err != nil {
		return b, err
	}
	r.Key = chord.ID(key)
	if r.Epoch, b, err = wirebin.Uvarint(b); err != nil {
		return b, err
	}
	b, err = r.TC.DecodeBinary(b)
	return b, err
}

// EncodeBinary appends the replica read answer's binary wire form to dst.
func (r HotPostingsResp) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendBool(dst, r.Hit)
	return appendPostings(dst, r.Postings)
}

// DecodeBinary consumes one replica read answer from b and returns the
// rest.
func (r *HotPostingsResp) DecodeBinary(b []byte) ([]byte, error) {
	var err error
	if r.Hit, b, err = wirebin.Bool(b); err != nil {
		return b, err
	}
	r.Postings, b, err = decodePostings(b)
	return b, err
}

// EncodeBinary appends the transfer request's binary wire form to dst.
func (r TransferReq) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(r.From))
	return wirebin.AppendUvarint(dst, uint64(r.To))
}

// DecodeBinary consumes one transfer request from b and returns the rest.
func (r *TransferReq) DecodeBinary(b []byte) ([]byte, error) {
	from, b, err := wirebin.Uvarint(b)
	if err != nil {
		return b, err
	}
	r.From = chord.ID(from)
	to, b, err := wirebin.Uvarint(b)
	r.To = chord.ID(to)
	return b, err
}

// EncodeBinary appends the drop request's binary wire form to dst.
func (r DropNodeReq) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendString(dst, string(r.Node))
	dst = wirebin.AppendBool(dst, r.Propagate)
	return r.TC.EncodeBinary(dst)
}

// DecodeBinary consumes one drop request from b and returns the rest.
func (r *DropNodeReq) DecodeBinary(b []byte) ([]byte, error) {
	node, b, err := wirebin.String(b)
	if err != nil {
		return b, err
	}
	r.Node = simnet.Addr(node)
	if r.Propagate, b, err = wirebin.Bool(b); err != nil {
		return b, err
	}
	b, err = r.TC.DecodeBinary(b)
	return b, err
}

// EncodeBinary appends the solutions response's binary wire form to dst.
func (r SolutionsResp) EncodeBinary(dst []byte) []byte {
	dst = r.Sols.EncodeBinary(dst)
	return r.TC.EncodeBinary(dst)
}

// DecodeBinary consumes one solutions response from b and returns the
// rest.
func (r *SolutionsResp) DecodeBinary(b []byte) ([]byte, error) {
	b, err := r.Sols.DecodeBinary(b)
	if err != nil {
		return b, err
	}
	b, err = r.TC.DecodeBinary(b)
	return b, err
}

// EncodeBinary appends the count request's binary wire form to dst.
func (r CountReq) EncodeBinary(dst []byte) []byte {
	return r.Pattern.EncodeBinary(dst)
}

// DecodeBinary consumes one count request from b and returns the rest.
func (r *CountReq) DecodeBinary(b []byte) ([]byte, error) {
	return r.Pattern.DecodeBinary(b)
}

// EncodeBinary appends the count response's binary wire form to dst.
func (r CountResp) EncodeBinary(dst []byte) []byte {
	return wirebin.AppendInt(dst, r.N)
}

// DecodeBinary consumes one count response from b and returns the rest.
func (r *CountResp) DecodeBinary(b []byte) ([]byte, error) {
	var err error
	r.N, b, err = wirebin.Int(b)
	return b, err
}

// EncodeBinary appends the triples response's binary wire form to dst.
func (r TriplesResp) EncodeBinary(dst []byte) []byte {
	return rdf.AppendTriples(dst, r.Triples)
}

// DecodeBinary consumes one triples response from b and returns the rest.
func (r *TriplesResp) DecodeBinary(b []byte) ([]byte, error) {
	var err error
	r.Triples, b, err = rdf.DecodeTriples(b)
	return b, err
}
