package overlay

import (
	"sort"
	"sync"

	"adhocshare/internal/chord"
	"adhocshare/internal/simnet"
)

// Posting records that a storage node shares Freq triples whose attribute
// combination hashes to the row's key — one entry of the paper's Table I
// ("Storage node (frequency)").
type Posting struct {
	Node simnet.Addr
	Freq int
}

// SizeBytes implements simnet.Payload for postings shipped in responses.
func (p Posting) SizeBytes() int { return len(p.Node) + intWidth(p.Freq) }

// LocationTable is the per-index-node key → postings map of Fig. 2 /
// Table I. It is safe for concurrent use.
type LocationTable struct {
	mu   sync.RWMutex
	rows map[chord.ID][]Posting
}

// NewLocationTable returns an empty table.
func NewLocationTable() *LocationTable {
	return &LocationTable{rows: map[chord.ID][]Posting{}}
}

// Add increments the frequency of (key, node) by delta, creating the
// posting as needed. A posting whose frequency drops to zero or below is
// removed.
func (t *LocationTable) Add(key chord.ID, node simnet.Addr, delta int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.rows[key]
	for i := range row {
		if row[i].Node == node {
			row[i].Freq += delta
			if row[i].Freq <= 0 {
				row = append(row[:i], row[i+1:]...)
				if len(row) == 0 {
					delete(t.rows, key)
					return
				}
			}
			t.rows[key] = row
			return
		}
	}
	if delta > 0 {
		t.rows[key] = append(row, Posting{Node: node, Freq: delta})
	}
}

// Set makes the frequency of (key, node) exactly freq (removing the
// posting when freq ≤ 0) — the idempotent form of Add.
func (t *LocationTable) Set(key chord.ID, node simnet.Addr, freq int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := t.rows[key]
	for i := range row {
		if row[i].Node == node {
			if freq <= 0 {
				row = append(row[:i], row[i+1:]...)
				if len(row) == 0 {
					delete(t.rows, key)
				} else {
					t.rows[key] = row
				}
				return
			}
			row[i].Freq = freq
			t.rows[key] = row
			return
		}
	}
	if freq > 0 {
		t.rows[key] = append(row, Posting{Node: node, Freq: freq})
	}
}

// Get returns a copy of the postings for a key, sorted by node address for
// determinism.
func (t *LocationTable) Get(key chord.ID) []Posting {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row := t.rows[key]
	out := append([]Posting(nil), row...)
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// DropNode removes every posting that references the given storage node —
// the timeout-driven cleanup of Sect. III-D. It returns the number of rows
// touched.
func (t *LocationTable) DropNode(node simnet.Addr) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	touched := 0
	for key, row := range t.rows {
		var keep []Posting
		for _, p := range row {
			if p.Node != node {
				keep = append(keep, p)
			}
		}
		if len(keep) != len(row) {
			touched++
			if len(keep) == 0 {
				delete(t.rows, key)
			} else {
				t.rows[key] = keep
			}
		}
	}
	return touched
}

// Keys returns all keys present, sorted.
func (t *LocationTable) Keys() []chord.ID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]chord.ID, 0, len(t.rows))
	for k := range t.rows {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of rows.
func (t *LocationTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Postings returns the total number of postings across all rows.
func (t *LocationTable) Postings() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, row := range t.rows {
		n += len(row)
	}
	return n
}

// ExtractRange removes and returns the rows whose keys fall in the ring
// interval (from, to] — the slice an index-node join transfers from its
// successor (Sect. III-C).
func (t *LocationTable) ExtractRange(from, to chord.ID) map[chord.ID][]Posting {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := map[chord.ID][]Posting{}
	for key, row := range t.rows {
		if ringRightIncl(key, from, to) {
			// Copy the row: delete(t.rows, key) drops the map entry but the
			// slice's backing array stays shared with any posting iterators
			// the table handed out, and the extracted rows travel over the
			// wire to another node.
			out[key] = append([]Posting(nil), row...)
			delete(t.rows, key)
		}
	}
	return out
}

// Snapshot copies every row (for graceful handover and replication).
func (t *LocationTable) Snapshot() map[chord.ID][]Posting {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[chord.ID][]Posting, len(t.rows))
	for key, row := range t.rows {
		out[key] = append([]Posting(nil), row...)
	}
	return out
}

// Merge installs the given rows, summing frequencies with existing
// postings.
func (t *LocationTable) Merge(rows map[chord.ID][]Posting) {
	for key, row := range rows {
		for _, p := range row {
			t.Add(key, p.Node, p.Freq)
		}
	}
}

// Replace overwrites whole rows with the primary's authoritative content.
// An empty (or nil) row deletes the key. Used for replica synchronization,
// which must be idempotent and must propagate retractions.
func (t *LocationTable) Replace(rows map[chord.ID][]Posting) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, row := range rows {
		if len(row) == 0 {
			delete(t.rows, key)
			continue
		}
		t.rows[key] = append([]Posting(nil), row...)
	}
}

// ringRightIncl reports whether x ∈ (from, to] on the identifier circle.
func ringRightIncl(x, from, to chord.ID) bool {
	if from < to {
		return from < x && x <= to
	}
	if from > to {
		return x > from || x <= to
	}
	return true
}
