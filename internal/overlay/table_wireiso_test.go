package overlay

import (
	"testing"

	"adhocshare/internal/chord"
)

// TestExtractRangeDoesNotAliasInternalRows is the regression test for a
// real wire-isolation bug: ExtractRange used to return the interior row
// slices themselves. delete(t.rows, key) drops the map entry, but the
// backing array stayed shared with any reference captured before the
// extraction, and the extracted rows travel over the wire to the joining
// index node — so a mutation on either side was visible on the other.
// The test fails if the deep-copy in ExtractRange is reverted.
func TestExtractRangeDoesNotAliasInternalRows(t *testing.T) {
	tbl := NewLocationTable()
	key := chord.ID(42)
	tbl.Add(key, "n1", 2)
	tbl.Add(key, "n2", 5)

	// White-box: hold the internal row slice, as a long-lived iterator or
	// an in-flight reader would.
	internal := tbl.rows[key]

	rows := tbl.ExtractRange(key-1, key)
	got, ok := rows[key]
	if !ok || len(got) != 2 {
		t.Fatalf("ExtractRange did not return the row: %v", rows)
	}
	if tbl.Len() != 0 {
		t.Fatalf("ExtractRange did not remove the row, %d left", tbl.Len())
	}

	// Mutate the extracted copy the way the receiving node would.
	got[0].Freq = 99
	got[1].Freq = 99

	if internal[0].Freq != 2 || internal[1].Freq != 5 {
		t.Fatalf("extracted rows share the table's backing array: internal postings became %+v", internal)
	}
}

// TestSnapshotDoesNotAliasInternalRows pins the same ownership contract
// for the replication path: mutating a snapshot must not corrupt the
// primary's table.
func TestSnapshotDoesNotAliasInternalRows(t *testing.T) {
	tbl := NewLocationTable()
	key := chord.ID(7)
	tbl.Add(key, "n1", 3)

	snap := tbl.Snapshot()
	snap[key][0].Freq = 99

	if got := tbl.Get(key); len(got) != 1 || got[0].Freq != 3 {
		t.Fatalf("snapshot shares the table's backing array: table row became %+v", got)
	}
}
