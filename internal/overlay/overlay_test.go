package overlay

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adhocshare/internal/chord"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
)

const foaf = "http://xmlns.com/foaf/0.1/"

func ex(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }
func fp(s string) rdf.Term { return rdf.NewIRI(foaf + s) }

func newTestSystem(t *testing.T, nIndex int) (*System, simnet.VTime) {
	t.Helper()
	s := NewSystem(Config{Bits: 16, Replication: 2,
		Net: simnet.Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20}})
	now := simnet.VTime(0)
	for i := 0; i < nIndex; i++ {
		_, done, err := s.AddIndexNode(simnet.Addr(fmt.Sprintf("idx-%02d", i)), now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	now = s.Converge(now)
	return s, now
}

func aliceTriples() []rdf.Triple {
	return []rdf.Triple{
		{S: ex("alice"), P: fp("name"), O: rdf.NewLiteral("Alice Smith")},
		{S: ex("alice"), P: fp("knows"), O: ex("bob")},
		{S: ex("alice"), P: fp("knows"), O: ex("carol")},
	}
}

func TestTripleKeysDistinctDomains(t *testing.T) {
	tr := rdf.Triple{S: ex("a"), P: fp("knows"), O: ex("a")}
	keys := TripleKeys(tr, 32)
	// subject and object have the same term but different key domains
	if keys[KeyS] == keys[KeyO] {
		t.Error("⟨s⟩ and ⟨o⟩ keys must not collide for the same term")
	}
	// all six keys are produced
	seen := map[chord.ID]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	if len(seen) < 5 { // allow a freak collision but not systematic overlap
		t.Errorf("expected mostly distinct keys, got %v", keys)
	}
}

func TestPatternKeySelection(t *testing.T) {
	v := rdf.NewVar
	s, p, o := ex("s"), fp("p"), rdf.NewLiteral("o")
	cases := []struct {
		pat  rdf.Triple
		kind KeyKind
		ok   bool
	}{
		{rdf.Triple{S: s, P: p, O: o}, KeySP, true},
		{rdf.Triple{S: s, P: p, O: v("o")}, KeySP, true},
		{rdf.Triple{S: v("s"), P: p, O: o}, KeyPO, true},
		{rdf.Triple{S: s, P: v("p"), O: o}, KeySO, true},
		{rdf.Triple{S: s, P: v("p"), O: v("o")}, KeyS, true},
		{rdf.Triple{S: v("s"), P: p, O: v("o")}, KeyP, true},
		{rdf.Triple{S: v("s"), P: v("p"), O: o}, KeyO, true},
		{rdf.Triple{S: v("s"), P: v("p"), O: v("o")}, 0, false},
	}
	for _, c := range cases {
		_, kind, ok := PatternKey(c.pat, 16)
		if ok != c.ok || (ok && kind != c.kind) {
			t.Errorf("PatternKey(%v) = %v,%v want %v,%v", c.pat, kind, ok, c.kind, c.ok)
		}
	}
	// pattern key must equal the matching triple key
	pat := rdf.Triple{S: rdf.NewVar("x"), P: fp("knows"), O: ex("bob")}
	key, _, _ := PatternKey(pat, 16)
	tr := rdf.Triple{S: ex("alice"), P: fp("knows"), O: ex("bob")}
	if key != TripleKeys(tr, 16)[KeyPO] {
		t.Error("pattern ⟨p,o⟩ key must match the triple's ⟨p,o⟩ key")
	}
}

func TestLocationTableBasics(t *testing.T) {
	lt := NewLocationTable()
	lt.Add(5, "D1", 15)
	lt.Add(5, "D3", 10)
	lt.Add(7, "D1", 30)
	if lt.Len() != 2 || lt.Postings() != 3 {
		t.Fatalf("len=%d postings=%d", lt.Len(), lt.Postings())
	}
	row := lt.Get(5)
	if len(row) != 2 || row[0].Node != "D1" || row[0].Freq != 15 {
		t.Errorf("row = %v", row)
	}
	lt.Add(5, "D1", 5)
	if lt.Get(5)[0].Freq != 20 {
		t.Error("frequency increment failed")
	}
	lt.Add(5, "D1", -20)
	if len(lt.Get(5)) != 1 {
		t.Error("zero-frequency posting not removed")
	}
	if n := lt.DropNode("D3"); n != 1 {
		t.Errorf("DropNode touched %d rows, want 1", n)
	}
	if lt.Len() != 1 {
		t.Errorf("len after drop = %d", lt.Len())
	}
}

func TestLocationTableExtractRange(t *testing.T) {
	lt := NewLocationTable()
	for _, k := range []chord.ID{1, 5, 9, 13} {
		lt.Add(k, "D", 1)
	}
	got := lt.ExtractRange(4, 10) // (4,10] → 5, 9
	if len(got) != 2 {
		t.Fatalf("extracted %d rows, want 2", len(got))
	}
	if lt.Len() != 2 {
		t.Errorf("remaining rows = %d, want 2", lt.Len())
	}
	// wraparound (12, 2] → 13, 1
	lt2 := NewLocationTable()
	for _, k := range []chord.ID{1, 5, 13} {
		lt2.Add(k, "D", 1)
	}
	got = lt2.ExtractRange(12, 2)
	if len(got) != 2 {
		t.Errorf("wraparound extracted %d rows, want 2", len(got))
	}
}

func TestPublishInstallsSixKeysPerTriple(t *testing.T) {
	s, now := newTestSystem(t, 4)
	st, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	tr := rdf.Triple{S: ex("alice"), P: fp("knows"), O: ex("bob")}
	now, err = s.Publish("D1", []rdf.Triple{tr}, now)
	if err != nil {
		t.Fatal(err)
	}
	if st.Graph.Size() != 1 {
		t.Error("triple not stored locally")
	}
	// every one of the six keys must resolve to a posting for D1
	for kind, key := range TripleKeys(tr, s.Config().Bits) {
		owner, _, done, err := s.ResolveKey("D1", key, now)
		now = done
		if err != nil {
			t.Fatal(err)
		}
		idx, ok := s.Index(owner)
		if !ok {
			t.Fatalf("owner %s is not an index node", owner)
		}
		row := idx.Table.Get(key)
		found := false
		for _, p := range row {
			if p.Node == "D1" && p.Freq == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("key kind %v: posting missing at %s (row %v)", KeyKind(kind), owner, row)
		}
	}
}

func TestPublishFrequencyCounts(t *testing.T) {
	// Table I semantics: frequency = number of triples sharing the hash
	// value of the attribute combination.
	s, now := newTestSystem(t, 4)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	// ⟨s⟩ = alice appears in 3 triples
	keyS := TripleKeys(aliceTriples()[0], s.Config().Bits)[KeyS]
	owner, _, now, err := s.ResolveKey("D1", keyS, now)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := s.Index(owner)
	row := idx.Table.Get(keyS)
	if len(row) != 1 || row[0].Freq != 3 {
		t.Errorf("⟨alice⟩ row = %v, want freq 3", row)
	}
	// ⟨s,p⟩ = (alice, knows) appears in 2 triples
	keySP := TripleKeys(aliceTriples()[1], s.Config().Bits)[KeySP]
	owner, _, _, err = s.ResolveKey("D1", keySP, now)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ = s.Index(owner)
	row = idx.Table.Get(keySP)
	if len(row) != 1 || row[0].Freq != 2 {
		t.Errorf("⟨alice,knows⟩ row = %v, want freq 2", row)
	}
}

func TestPublishDuplicateTripleNotReindexed(t *testing.T) {
	s, now := newTestSystem(t, 3)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	tr := aliceTriples()[:1]
	now, err = s.Publish("D1", tr, now)
	if err != nil {
		t.Fatal(err)
	}
	before := s.TotalPostings()
	if _, err = s.Publish("D1", tr, now); err != nil {
		t.Fatal(err)
	}
	if s.TotalPostings() != before {
		t.Error("duplicate publish changed postings")
	}
}

func TestRetract(t *testing.T) {
	s, now := newTestSystem(t, 3)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Retract("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalPostings() != 0 {
		t.Errorf("postings after full retract = %d, want 0", s.TotalPostings())
	}
	if st, _ := s.Storage("D1"); st.Graph.Size() != 0 {
		t.Error("graph not empty after retract")
	}
}

func TestMultipleStorageNodesShareKeys(t *testing.T) {
	s, now := newTestSystem(t, 4)
	for _, d := range []string{"D1", "D2", "D3"} {
		_, done, err := s.AddStorageNode(simnet.Addr(d), now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	// all three nodes share a (knows, carol) triple with different subjects
	for i, d := range []string{"D1", "D2", "D3"} {
		tr := rdf.Triple{S: ex(fmt.Sprintf("p%d", i)), P: fp("knows"), O: ex("carol")}
		done, err := s.Publish(simnet.Addr(d), []rdf.Triple{tr}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	pat := rdf.Triple{S: rdf.NewVar("x"), P: fp("knows"), O: ex("carol")}
	key, _, _ := PatternKey(pat, s.Config().Bits)
	owner, _, now, err := s.ResolveKey("D1", key, now)
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := s.Net().Call("D1", owner, MethodLookup, LookupReq{Key: key}, now)
	if err != nil {
		t.Fatal(err)
	}
	row := resp.(PostingsResp).Postings
	if len(row) != 3 {
		t.Errorf("⟨knows,carol⟩ row has %d postings, want 3: %v", len(row), row)
	}
}

func TestStorageNodeMatch(t *testing.T) {
	s, now := newTestSystem(t, 3)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	req := MatchReq{Patterns: []rdf.Triple{{S: rdf.NewVar("x"), P: fp("knows"), O: rdf.NewVar("y")}}}
	resp, _, err := s.Net().Call("idx-00", "D1", MethodMatch, req, now)
	if err != nil {
		t.Fatal(err)
	}
	sols := resp.(SolutionsResp).Sols
	if len(sols) != 2 {
		t.Errorf("match returned %d solutions, want 2", len(sols))
	}
}

func TestIndexNodeJoinTransfersTableSlice(t *testing.T) {
	s, now := newTestSystem(t, 3)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	// add a new index node; afterwards every key must resolve to an owner
	// that actually has the row
	_, now, err = s.AddIndexNode("idx-late", now)
	if err != nil {
		t.Fatal(err)
	}
	now = s.Converge(now)
	for _, tr := range aliceTriples() {
		for _, key := range TripleKeys(tr, s.Config().Bits) {
			owner, _, done, err := s.ResolveKey("D1", key, now)
			now = done
			if err != nil {
				t.Fatal(err)
			}
			idx, _ := s.Index(owner)
			if len(idx.Table.Get(key)) == 0 {
				t.Errorf("after join, owner %s lacks row for key %v", owner, key)
			}
		}
	}
}

func TestIndexNodeGracefulLeaveHandsOverTable(t *testing.T) {
	s, now := newTestSystem(t, 4)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	// gracefully remove the index node owning the ⟨s⟩ key
	keyS := TripleKeys(aliceTriples()[0], s.Config().Bits)[KeyS]
	owner, _, now, err := s.ResolveKey("D1", keyS, now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.RemoveIndexGraceful(owner, now)
	if err != nil {
		t.Fatal(err)
	}
	newOwner, _, now, err := s.ResolveKey("D1", keyS, now)
	if err != nil {
		t.Fatal(err)
	}
	if newOwner == owner {
		t.Fatal("key still resolves to the departed node")
	}
	idx, _ := s.Index(newOwner)
	if len(idx.Table.Get(keyS)) == 0 {
		t.Error("handed-over row missing at the successor")
	}
}

func TestIndexNodeCrashServedByReplica(t *testing.T) {
	s, now := newTestSystem(t, 5)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	keyS := TripleKeys(aliceTriples()[0], s.Config().Bits)[KeyS]
	owner, _, now, err := s.ResolveKey("D1", keyS, now)
	if err != nil {
		t.Fatal(err)
	}
	s.FailNode(owner)
	// let the ring heal
	for i := 0; i < 4; i++ {
		now = s.StabilizeRound(now)
	}
	now = s.Converge(now)
	newOwner, _, now, err := s.ResolveKey("D1", keyS, now)
	if err != nil {
		t.Fatal(err)
	}
	if newOwner == owner {
		t.Fatal("lookup still routes to the crashed node")
	}
	idx, _ := s.Index(newOwner)
	row := idx.Table.Get(keyS)
	if len(row) == 0 {
		t.Error("replication did not preserve the row across the crash")
	}
}

func TestDropStorageEverywhere(t *testing.T) {
	s, now := newTestSystem(t, 3)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	s.FailNode("D1")
	s.DropStorageEverywhere("D1", now)
	if s.TotalPostings() != 0 {
		t.Errorf("postings after drop = %d, want 0", s.TotalPostings())
	}
}

func TestFig1Reconstruction(t *testing.T) {
	// Fig. 1: index nodes N1, N4, N7, N12, N15 in a 4-bit space with four
	// storage nodes attached.
	s := NewSystem(Config{Bits: 4, Replication: 1,
		Net: simnet.Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20}})
	now := simnet.VTime(0)
	for _, id := range []chord.ID{1, 4, 7, 12, 15} {
		_, done, err := s.AddIndexNodeWithID(simnet.Addr(fmt.Sprintf("N%d", id)), id, now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	now = s.Converge(now)
	for i := 1; i <= 4; i++ {
		_, done, err := s.AddStorageNode(simnet.Addr(fmt.Sprintf("D%d", i)), now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	idx := s.IndexNodes()
	if len(idx) != 5 {
		t.Fatalf("index nodes = %d", len(idx))
	}
	wantSucc := map[chord.ID]chord.ID{1: 4, 4: 7, 7: 12, 12: 15, 15: 1}
	for _, n := range idx {
		if got := n.Chord.Successor().ID; got != wantSucc[n.ID()] {
			t.Errorf("successor(N%d) = %v, want N%d", n.ID(), got, wantSucc[n.ID()])
		}
	}
	// every storage node attaches to a ring member
	for _, st := range s.StorageNodes() {
		if _, ok := s.Index(st.AttachedTo()); !ok {
			t.Errorf("storage %s attached to non-index %s", st.Addr(), st.AttachedTo())
		}
	}
	// publication and lookup work in the 4-bit space
	now, err := s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	pat := rdf.Triple{S: ex("alice"), P: fp("knows"), O: rdf.NewVar("o")}
	key, _, _ := PatternKey(pat, 4)
	owner, hops, _, err := s.ResolveKey("D2", key, now)
	if err != nil {
		t.Fatal(err)
	}
	if hops > 5 {
		t.Errorf("lookup took %d hops in a 5-node ring", hops)
	}
	idxNode, _ := s.Index(owner)
	if len(idxNode.Table.Get(key)) == 0 {
		t.Error("lookup owner lacks the posting")
	}
}

func TestReplicationFactorHonored(t *testing.T) {
	s, now := newTestSystem(t, 5) // replication 2
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	// with R=2 every posting exists twice (primary + one replica), so the
	// total postings should be about 2× the primary count; each triple has
	// 6 keys and alice has 3 triples with overlapping keys
	primaryKeys := map[chord.ID]bool{}
	for _, tr := range aliceTriples() {
		for _, k := range TripleKeys(tr, s.Config().Bits) {
			primaryKeys[k] = true
		}
	}
	want := 2 * len(primaryKeys)
	if got := s.TotalPostings(); got != want {
		t.Errorf("total postings = %d, want %d (R=2 × %d keys)", got, want, len(primaryKeys))
	}
}

func TestConcurrentPublishAndLookup(t *testing.T) {
	s, now := newTestSystem(t, 6)
	var names []simnet.Addr
	for i := 0; i < 6; i++ {
		name := simnet.Addr(fmt.Sprintf("C%d", i))
		names = append(names, name)
		_, done, err := s.AddStorageNode(name, now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name simnet.Addr) {
			defer wg.Done()
			var ts []rdf.Triple
			for j := 0; j < 20; j++ {
				ts = append(ts, rdf.Triple{
					S: ex(fmt.Sprintf("c%d-s%d", i, j)), P: fp("knows"), O: ex("hub"),
				})
			}
			if _, err := s.Publish(name, ts, 0); err != nil {
				t.Error(err)
			}
		}(i, name)
	}
	wg.Wait()
	// all 120 triples indexed under the shared (knows, hub) po-key
	pat := rdf.Triple{S: rdf.NewVar("x"), P: fp("knows"), O: ex("hub")}
	key, _, _ := PatternKey(pat, s.Config().Bits)
	owner, _, now, err := s.ResolveKey("C0", key, now)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := s.Index(owner)
	row := idx.Table.Get(key)
	total := 0
	for _, p := range row {
		total += p.Freq
	}
	if len(row) != 6 || total != 120 {
		t.Errorf("po row = %v (total %d), want 6 postings totalling 120", row, total)
	}
}

func TestPostingDistributionAcrossIndexNodes(t *testing.T) {
	// With hashed keys, no single index node should hold everything.
	s, now := newTestSystem(t, 8)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	var ts []rdf.Triple
	for i := 0; i < 100; i++ {
		ts = append(ts, rdf.Triple{
			S: ex(fmt.Sprintf("s%d", i)), P: fp(fmt.Sprintf("p%d", i%7)), O: rdf.NewInteger(int64(i)),
		})
	}
	if _, err := s.Publish("D1", ts, now); err != nil {
		t.Fatal(err)
	}
	max, total := 0, 0
	for _, n := range s.IndexNodes() {
		c := n.Table.Postings()
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		t.Fatal("no postings")
	}
	if float64(max) > 0.6*float64(total) {
		t.Errorf("index load imbalance: one node holds %d of %d postings", max, total)
	}
}

func TestRetractUnknownAndPublishUnknown(t *testing.T) {
	s, now := newTestSystem(t, 3)
	if _, err := s.Publish("ghost", aliceTriples(), now); err == nil {
		t.Error("publish to unknown storage accepted")
	}
	if _, err := s.Retract("ghost", aliceTriples(), now); err == nil {
		t.Error("retract from unknown storage accepted")
	}
	if _, _, err := s.AddStorageNode("D1", now); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AddStorageNode("D1", now); err == nil {
		t.Error("duplicate storage node accepted")
	}
	if _, _, err := s.AddIndexNode("idx-00", now); err == nil {
		t.Error("duplicate index node accepted")
	}
}

func TestStorageNodeUnknownMethod(t *testing.T) {
	s, now := newTestSystem(t, 3)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Net().Call("idx-00", "D1", "bogus.method", simnet.Bytes(1), now); err == nil {
		t.Error("unknown method accepted")
	}
	if _, _, err := s.Net().Call("D1", "idx-00", "bogus.method", simnet.Bytes(1), now); err == nil {
		t.Error("unknown index method accepted")
	}
}

func TestStorageCount(t *testing.T) {
	s, now := newTestSystem(t, 3)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := s.Net().Call("idx-00", "D1", MethodCount,
		CountReq{Pattern: rdf.Triple{S: ex("alice"), P: rdf.NewVar("p"), O: rdf.NewVar("o")}}, now)
	if err != nil {
		t.Fatal(err)
	}
	if resp.(CountResp).N != 3 {
		t.Errorf("count = %d, want 3", resp.(CountResp).N)
	}
}

func TestStorageDump(t *testing.T) {
	s, now := newTestSystem(t, 3)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := s.Net().Call("idx-00", "D1", MethodDump,
		CountReq{Pattern: rdf.Triple{S: ex("alice"), P: fp("knows"), O: rdf.NewVar("o")}}, now)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.(TriplesResp).Triples); got != 2 {
		t.Errorf("dump = %d triples, want 2", got)
	}
}

func TestAddStorageWithoutIndexFails(t *testing.T) {
	s := NewSystem(Config{Bits: 16, Net: simnet.Config{BaseLatency: time.Millisecond}})
	if _, _, err := s.AddStorageNode("D1", 0); err == nil {
		t.Error("storage node without ring accepted")
	}
}

func TestPayloadSizes(t *testing.T) {
	// every message type reports a positive wire size
	payloads := []simnet.Payload{
		PutReq{Key: 1, Node: "D1", Freq: 2},
		PutBatchReq{Node: "D1", Entries: []KeyFreq{{Key: 1, Freq: 1}}},
		LookupReq{Key: 9},
		PostingsResp{Postings: []Posting{{Node: "D1", Freq: 3}}},
		TransferReq{From: 1, To: 2},
		TableRows{Rows: map[chord.ID][]Posting{1: {{Node: "D1", Freq: 1}}}},
		DropNodeReq{Node: "D1"},
		MatchReq{Patterns: []rdf.Triple{{S: ex("a"), P: fp("p"), O: ex("b")}}},
		SolutionsResp{},
		CountReq{Pattern: rdf.Triple{S: ex("a"), P: fp("p"), O: ex("b")}},
		CountResp{N: 1},
		TriplesResp{Triples: aliceTriples()},
	}
	for _, p := range payloads {
		if p.SizeBytes() <= 0 {
			t.Errorf("%T has non-positive size", p)
		}
	}
}

func TestRepublishAfterRecoveryIdempotent(t *testing.T) {
	s, now := newTestSystem(t, 5)
	_, now, err := s.AddStorageNode("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Publish("D1", aliceTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	healthy := s.TotalPostings()

	// crash D1; every index node drops its postings (global cleanup)
	s.FailNode("D1")
	for _, n := range s.IndexNodes() {
		n.Table.DropNode("D1")
	}
	if s.TotalPostings() != 0 {
		t.Fatal("cleanup incomplete")
	}
	// D1 comes back with its data intact; re-publication restores postings
	s.RecoverNode("D1")
	now, err = s.Republish("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalPostings(); got != healthy {
		t.Errorf("postings after republish = %d, want %d", got, healthy)
	}
	// repeating Republish must not double anything (absolute semantics)
	now, err = s.Republish("D1", now)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalPostings(); got != healthy {
		t.Errorf("postings after second republish = %d, want %d", got, healthy)
	}
	// frequencies restored exactly
	keyS := TripleKeys(aliceTriples()[0], s.Config().Bits)[KeyS]
	owner, _, _, err := s.ResolveKey("D1", keyS, now)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := s.Index(owner)
	row := idx.Table.Get(keyS)
	if len(row) != 1 || row[0].Freq != 3 {
		t.Errorf("restored row = %v, want freq 3", row)
	}
}

func TestLocationTableSet(t *testing.T) {
	lt := NewLocationTable()
	lt.Set(1, "D1", 5)
	if lt.Get(1)[0].Freq != 5 {
		t.Error("Set insert failed")
	}
	lt.Set(1, "D1", 5)
	if lt.Get(1)[0].Freq != 5 || lt.Postings() != 1 {
		t.Error("Set not idempotent")
	}
	lt.Set(1, "D1", 2)
	if lt.Get(1)[0].Freq != 2 {
		t.Error("Set overwrite failed")
	}
	lt.Set(1, "D1", 0)
	if lt.Len() != 0 {
		t.Error("Set zero did not remove")
	}
}
