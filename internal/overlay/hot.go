package overlay

// Workload-adaptive hot-key replication (home-successor side).
//
// The paper's two-level location table places each key on exactly one
// Chord successor, so a skewed workload turns the successor of a popular
// key into a hotspot. Following the workload-adaptivity idea of AdPart /
// PHD-Store, an index node counts the lookups it serves per key with a
// half-life-decayed counter (deterministic: decay is computed in whole
// virtual-time windows from integer VTimes, never from wall clocks) and,
// past a threshold, pushes an absolute epoch-stamped copy of the row to k
// ring successors. Adaptive initiators learn those replica addresses from
// the lookup response and read the nearest live copy directly next time.
//
// Coherence is epoch-based: every copy is stamped with the stabilization
// epoch of the lookup that triggered it, replica reads carry the reader's
// epoch and miss on any mismatch, and the holder discards the stale copy
// on that miss. Since Converge / StabilizeRound / FailNode / RecoverNode
// all bump the epoch, any churn that can move key ownership implicitly
// invalidates every outstanding replica and client hint at once. Within
// an epoch, mutations (put, put_batch, drop_node) re-push the affected
// hot rows to the same holders before the mutation is acknowledged, so a
// fault-free run can never serve a stale replica.

import (
	"sort"
	"strconv"
	"sync"

	"adhocshare/internal/chord"
	"adhocshare/internal/flight"
	"adhocshare/internal/simnet"
	"adhocshare/internal/trace"
)

// AdaptiveParams tunes the hot-key detector of one index node. Zero
// fields keep the node's previous value (System fills defaults from
// Config.withDefaults).
type AdaptiveParams struct {
	// Threshold is the decayed lookup count at which a key turns hot.
	Threshold int
	// HalfLife is the virtual-time window after which counts halve.
	HalfLife simnet.VTime
	// Replicas is the number of ring successors receiving hot copies.
	Replicas int
}

// hotCounter is one key's decayed lookup counter. last anchors the decay
// window; counts halve once per whole HalfLife elapsed since it.
type hotCounter struct {
	count int
	last  simnet.VTime
}

// hotEntry records, on the home successor, where a hot key's row has been
// pushed and under which stabilization epoch the copies are valid.
type hotEntry struct {
	replicas []simnet.Addr
	epoch    uint64
}

// heldReplica is one hot row held on a replica holder.
type heldReplica struct {
	postings []Posting
	home     simnet.Addr
	epoch    uint64
}

// hotState is the per-node adaptive state. mu is a leaf lock guarding
// every field below it; it is never held across fabric calls — callers
// decide under the lock, release it, then send.
type hotState struct {
	threshold int
	halfLife  simnet.VTime
	replicas  int

	mu       sync.Mutex
	counters map[chord.ID]hotCounter
	entries  map[chord.ID]hotEntry
	held     map[chord.ID]heldReplica
}

// EnableAdaptive turns on the node's hot-key detector. Call before the
// node serves traffic; System does so when Config.Adaptive is set.
func (n *IndexNode) EnableAdaptive(p AdaptiveParams) {
	if p.Threshold <= 0 {
		p.Threshold = 4
	}
	if p.HalfLife <= 0 {
		p.HalfLife = simnet.VTime(2_000_000_000)
	}
	if p.Replicas <= 0 {
		p.Replicas = 2
	}
	st := &hotState{
		threshold: p.Threshold,
		halfLife:  p.HalfLife,
		replicas:  p.Replicas,
		counters:  make(map[chord.ID]hotCounter),
		entries:   make(map[chord.ID]hotEntry),
		held:      make(map[chord.ID]heldReplica),
	}
	n.hotMu.Lock()
	n.hot = st
	n.hotMu.Unlock()
}

// noteLookup bumps the key's decayed counter at virtual time `at` and
// reports whether the key is (still) past the hot threshold.
//adhoclint:faultpath(benign, advisory popularity counter; an extra bump from a retried lookup only hastens an already-converging promotion)
func (h *hotState) noteLookup(key chord.ID, at simnet.VTime) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.counters[key]
	if c.count > 0 && at > c.last {
		steps := int64(at-c.last) / int64(h.halfLife)
		if steps > 0 {
			if steps > 62 {
				c.count = 0
			} else {
				c.count >>= uint(steps)
			}
			c.last += simnet.VTime(steps * int64(h.halfLife))
		}
	}
	if c.count == 0 {
		c.last = at
	}
	c.count++
	h.counters[key] = c
	return c.count >= h.threshold
}

// adaptiveTail runs after the table read of an adaptive (epoch-stamped)
// lookup: it counts the lookup and, once the key is hot, pushes the row
// to the node's ring successors and returns the advertisement to embed in
// the response. Pushes are fire-and-forget Sends, so the lookup's own
// latency never blocks on a replica holder; a lost push just leaves a
// holder that answers "miss". postings is the fresh copy already built
// for the response; the pushes get their own copy so no two payloads
// alias one slice.
func (n *IndexNode) adaptiveTail(h *hotState, key chord.ID, postings []Posting, epoch uint64, tc trace.TraceContext, at simnet.VTime) ([]simnet.Addr, uint64) {
	if !h.noteLookup(key, at) {
		return nil, 0
	}
	h.mu.Lock()
	entry, ok := h.entries[key]
	h.mu.Unlock()
	if ok && entry.epoch == epoch {
		return append([]simnet.Addr(nil), entry.replicas...), epoch
	}
	targets := n.hotTargets(h)
	if len(targets) == 0 {
		return nil, 0
	}
	ps := append([]Posting(nil), postings...)
	flt := n.net.FlightRecorder()
	for i, to := range targets {
		//adhoclint:faultpath(fire-and-forget, hot-replica pushes are advisory: a lost push leaves a holder that misses and the initiator falls back to the home successor)
		n.net.Send(n.addr, to, MethodHotReplica,
			HotReplicaReq{Key: key, Home: n.addr, Epoch: epoch, Postings: ps, TC: tc.Child(uint64(i + 1))}, at)
		if flt != nil {
			flt.Emit(flight.Event{Node: string(n.addr), Kind: flight.KindHotPush,
				VT: int64(at), End: int64(at), Peer: string(to), Method: MethodHotReplica,
				Query: tc.Query, Note: "epoch " + strconv.FormatUint(epoch, 10)})
		}
	}
	h.mu.Lock()
	h.entries[key] = hotEntry{replicas: targets, epoch: epoch}
	h.mu.Unlock()
	return append([]simnet.Addr(nil), targets...), epoch
}

// hotTargets picks up to `replicas` live ring successors (excluding the
// node itself) as holders for hot copies — the same walk replicate() uses
// for durability copies, so hot placement follows ring locality.
func (n *IndexNode) hotTargets(h *hotState) []simnet.Addr {
	list := n.Chord.SuccessorList()
	targets := make([]simnet.Addr, 0, h.replicas)
	for _, succ := range list {
		if len(targets) >= h.replicas {
			break
		}
		if succ.Addr == n.addr || !n.net.Alive(succ.Addr) {
			continue
		}
		targets = append(targets, succ.Addr)
	}
	return targets
}

// refreshHot re-pushes the current rows of mutated hot keys to their
// recorded holders, keeping same-epoch replicas coherent with the home
// table before the mutation is acknowledged. keys lists the touched keys
// (nil = every hot key, for whole-table mutations like drop_node); keys
// without a hot entry are skipped. Iteration is over a sorted copy so
// same-seed runs push in the same order.
func (n *IndexNode) refreshHot(keys []chord.ID, tc trace.TraceContext, at simnet.VTime) {
	h := n.hotRef()
	if h == nil {
		return
	}
	h.mu.Lock()
	work := make([]chord.ID, 0, len(h.entries))
	if keys == nil {
		for k := range h.entries {
			work = append(work, k)
		}
	} else {
		for _, k := range keys {
			if _, ok := h.entries[k]; ok {
				work = append(work, k)
			}
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })
	pushes := make([]struct {
		key   chord.ID
		entry hotEntry
	}, 0, len(work))
	for _, k := range work {
		pushes = append(pushes, struct {
			key   chord.ID
			entry hotEntry
		}{k, h.entries[k]})
	}
	h.mu.Unlock()
	seq := uint64(0)
	flt := n.net.FlightRecorder()
	for _, p := range pushes {
		ps := n.Table.Get(p.key)
		for _, to := range p.entry.replicas {
			seq++
			//adhoclint:faultpath(fire-and-forget, coherence re-pushes are absolute and epoch-stamped; a lost one can at worst leave a same-epoch stale copy, the documented fault-window trade shared with the lookup cache)
			n.net.Send(n.addr, to, MethodHotReplica,
				HotReplicaReq{Key: p.key, Home: n.addr, Epoch: p.entry.epoch, Postings: ps, TC: tc.Child(1000 + seq)}, at)
			if flt != nil {
				flt.Emit(flight.Event{Node: string(n.addr), Kind: flight.KindHotPush,
					VT: int64(at), End: int64(at), Peer: string(to), Method: MethodHotReplica,
					Query: tc.Query, Note: "refresh epoch " + strconv.FormatUint(p.entry.epoch, 10)})
			}
		}
	}
}

// storeHotReplica installs a pushed copy, replacing any previous one for
// the key wholesale (idempotent under re-delivery). The slice is copied
// so the stored row never aliases the wire payload.
func (n *IndexNode) storeHotReplica(r HotReplicaReq) {
	h := n.hotRef()
	if h == nil {
		return
	}
	ps := append([]Posting(nil), r.Postings...)
	h.mu.Lock()
	h.held[r.Key] = heldReplica{postings: ps, home: r.Home, epoch: r.Epoch}
	h.mu.Unlock()
}

// readHotReplica serves a replica read at the requested epoch. A held
// copy with a different epoch is discarded on the spot (the epoch bump
// already invalidated it); a home node answers from its own table when it
// has advertised the key at that epoch. The returned row never aliases
// internal state. `at` timestamps the flight events of the read/discard.
func (n *IndexNode) readHotReplica(key chord.ID, epoch uint64, at simnet.VTime) ([]Posting, bool) {
	h := n.hotRef()
	if h == nil {
		return nil, false
	}
	flt := n.net.FlightRecorder()
	h.mu.Lock()
	if held, ok := h.held[key]; ok {
		if held.epoch == epoch {
			ps := append([]Posting(nil), held.postings...)
			h.mu.Unlock()
			if flt != nil {
				flt.Emit(flight.Event{Node: string(n.addr), Kind: flight.KindHotRead,
					VT: int64(at), End: int64(at), Method: MethodHotLookup,
					Note: "epoch " + strconv.FormatUint(epoch, 10)})
			}
			return ps, true
		}
		stale := held.epoch
		delete(h.held, key)
		if flt != nil {
			flt.Emit(flight.Event{Node: string(n.addr), Kind: flight.KindHotInval,
				VT: int64(at), End: int64(at), Method: MethodHotLookup,
				Note: "stale epoch " + strconv.FormatUint(stale, 10) + " != " + strconv.FormatUint(epoch, 10)})
		}
	}
	entry, home := h.entries[key]
	h.mu.Unlock()
	if home && entry.epoch == epoch {
		if flt != nil {
			flt.Emit(flight.Event{Node: string(n.addr), Kind: flight.KindHotRead,
				VT: int64(at), End: int64(at), Method: MethodHotLookup, Note: "home"})
		}
		return n.Table.Get(key), true
	}
	return nil, false
}

// HeldHot is one hot-row copy held on a replica holder, as seen by the
// replica-epoch monitor.
type HeldHot struct {
	Key   chord.ID
	Home  simnet.Addr
	Epoch uint64
}

// HeldHotReplicas snapshots the node's held hot copies, sorted by key
// (empty when the node is not adaptive).
func (n *IndexNode) HeldHotReplicas() []HeldHot {
	h := n.hotRef()
	if h == nil {
		return nil
	}
	h.mu.Lock()
	out := make([]HeldHot, 0, len(h.held))
	for k, held := range h.held {
		out = append(out, HeldHot{Key: k, Home: held.home, Epoch: held.epoch})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// HotAdvertisedEpoch reports the epoch under which the home node last
// advertised the key as hot (ok=false when the key has no hot entry).
func (n *IndexNode) HotAdvertisedEpoch(key chord.ID) (uint64, bool) {
	h := n.hotRef()
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	entry, ok := h.entries[key]
	return entry.epoch, ok
}
