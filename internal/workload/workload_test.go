package workload

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Persons: 50, Providers: 4, Seed: 7})
	b := Generate(Config{Persons: 50, Providers: 4, Seed: 7})
	if a.TotalTriples() != b.TotalTriples() {
		t.Fatal("same seed produced different sizes")
	}
	for prov, ts := range a.ByProvider {
		bs := b.ByProvider[prov]
		if len(ts) != len(bs) {
			t.Fatalf("provider %s differs", prov)
		}
		for i := range ts {
			if ts[i] != bs[i] {
				t.Fatalf("triple %d of %s differs", i, prov)
			}
		}
	}
	c := Generate(Config{Persons: 50, Providers: 4, Seed: 8})
	if c.TotalTriples() == a.TotalTriples() && sameFirst(a, c) {
		t.Error("different seeds produced identical data")
	}
}

// An injected Rng seeded with S must reproduce the Seed: S run exactly —
// the two configuration styles are interchangeable.
func TestGenerateInjectedRng(t *testing.T) {
	a := Generate(Config{Persons: 60, Providers: 4, ZipfS: 1.3, Seed: 5})
	b := Generate(Config{Persons: 60, Providers: 4, ZipfS: 1.3, Seed: 5,
		Rng: rand.New(rand.NewSource(5))})
	if !reflect.DeepEqual(a.ByProvider, b.ByProvider) {
		t.Error("injected rng run differs from equivalent seeded run")
	}
	if a.PopularPerson != b.PopularPerson || a.RarePerson != b.RarePerson {
		t.Error("derived persons differ between seeded and injected runs")
	}
}

func sameFirst(a, b *Dataset) bool {
	for prov, ts := range a.ByProvider {
		bs := b.ByProvider[prov]
		if len(ts) == 0 || len(bs) == 0 {
			continue
		}
		return ts[len(ts)-1] == bs[len(bs)-1]
	}
	return false
}

func TestGenerateShape(t *testing.T) {
	d := Generate(Config{Persons: 100, Providers: 5, AvgKnows: 3, Seed: 1})
	if len(d.Persons) != 100 {
		t.Fatalf("persons = %d", len(d.Persons))
	}
	if len(d.ByProvider) != 5 {
		t.Fatalf("providers = %d", len(d.ByProvider))
	}
	// every person has a name, mbox and age: at least 3 triples each
	if d.TotalTriples() < 300 {
		t.Errorf("total triples = %d, want >= 300", d.TotalTriples())
	}
	g := d.UnionGraph()
	nameCount := g.CountMatch(rdf.Triple{
		S: rdf.NewVar("s"), P: rdf.NewIRI(FOAF + "name"), O: rdf.NewVar("o")})
	if nameCount != 100 {
		t.Errorf("name triples = %d, want 100", nameCount)
	}
	knows := g.CountMatch(rdf.Triple{
		S: rdf.NewVar("s"), P: rdf.NewIRI(FOAF + "knows"), O: rdf.NewVar("o")})
	if knows < 100 {
		t.Errorf("knows triples = %d, want >= 100", knows)
	}
}

func TestZipfSkewsPopularity(t *testing.T) {
	d := Generate(Config{Persons: 200, Providers: 4, AvgKnows: 4, ZipfS: 1.4, Seed: 3})
	g := d.UnionGraph()
	popular := g.CountMatch(rdf.Triple{
		S: rdf.NewVar("s"), P: rdf.NewIRI(FOAF + "knows"), O: d.PopularPerson})
	rare := g.CountMatch(rdf.Triple{
		S: rdf.NewVar("s"), P: rdf.NewIRI(FOAF + "knows"), O: d.RarePerson})
	if popular <= rare {
		t.Errorf("popular person referenced %d times, rare %d — skew missing", popular, rare)
	}
	if popular < 10 {
		t.Errorf("popular person referenced only %d times under Zipf 1.4", popular)
	}
}

func TestOverlapFractionReplicatesFacts(t *testing.T) {
	disjoint := Generate(Config{Persons: 100, Providers: 4, Seed: 5, OverlapFraction: 0})
	overlapped := Generate(Config{Persons: 100, Providers: 4, Seed: 5, OverlapFraction: 0.8})
	// the union graphs are the same size (replication adds copies of the
	// same triples), but total stored triples grow
	if overlapped.TotalTriples() <= disjoint.TotalTriples() {
		t.Error("overlap fraction did not replicate facts")
	}
	if overlapped.UnionGraph().Size() != disjoint.UnionGraph().Size() {
		t.Error("overlap changed the union graph (should only add copies)")
	}
}

func TestProvidersDeterministicOrder(t *testing.T) {
	d := Generate(Config{Persons: 10, Providers: 3, Seed: 2})
	provs := d.Providers()
	if len(provs) != 3 || provs[0] != "D00" || provs[2] != "D02" {
		t.Errorf("providers = %v", provs)
	}
}

func TestQueryTemplatesParse(t *testing.T) {
	d := Generate(Config{Persons: 20, Providers: 2, Seed: 1})
	queries := map[string]string{
		"primitive":   QueryPrimitive(d.PopularPerson),
		"conjunction": QueryConjunction(),
		"optional":    QueryOptional("Smith"),
		"union":       QueryUnion(d.Persons[0]),
		"filter":      QueryFilter("Smith"),
		"fig4":        QueryFig4("Smith"),
		"age":         QueryAgeRange(20, 40),
		"all":         QueryAll(),
	}
	for name, q := range queries {
		if _, err := sparql.Parse(q); err != nil {
			t.Errorf("%s: %v\n%s", name, err, q)
		}
	}
}

func TestQueryTemplatesMentionTargets(t *testing.T) {
	p := PersonIRI(7)
	q := QueryPrimitive(p)
	if !strings.Contains(q, "p0007") {
		t.Errorf("primitive query missing target: %s", q)
	}
}
