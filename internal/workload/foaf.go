// Package workload generates synthetic Semantic Web data and query
// workloads for the experiments. The generator produces FOAF-style social
// data — the scenario the paper's introduction motivates (personal users
// sharing RDF about people they know) — with controllable size, skew and
// cross-provider overlap, plus the query templates of the paper's
// Figs. 4-9 parameterized over the generated entities.
package workload

import (
	"fmt"
	"math/rand"

	"adhocshare/internal/rdf"
)

// Namespaces used by the generator.
const (
	FOAF = "http://xmlns.com/foaf/0.1/"
	NS   = "http://example.org/ns#"
	Base = "http://example.org/people/"
)

// Common first/last name pools; deterministic and small so FILTER regex
// selectivity is controllable.
var (
	firstNames = []string{"Alice", "Bob", "Carol", "Dave", "Erin", "Frank",
		"Grace", "Heidi", "Ivan", "Judy", "Mallory", "Niaj", "Olivia",
		"Peggy", "Rupert", "Sybil", "Trent", "Victor", "Walter", "Yolanda"}
	lastNames = []string{"Smith", "Jones", "Brown", "Taylor", "Wilson",
		"Davies", "Evans", "Thomas", "Johnson", "Roberts"}
)

// Config parameterizes a social-graph generation run.
type Config struct {
	// Persons is the number of people in the network.
	Persons int
	// Providers is the number of storage nodes the data is partitioned
	// over (each person's description lives with one provider — the
	// ad-hoc "providers keep their own data" premise).
	Providers int
	// AvgKnows is the mean out-degree of foaf:knows edges.
	AvgKnows int
	// ZipfS skews the popularity of knows-targets (0 disables skew;
	// typical values 1.0–1.5). Popular people appear as objects far more
	// often, which skews the Table I frequency distribution.
	ZipfS float64
	// OverlapFraction is the probability that a generated knows-edge is
	// also replicated to other providers (personal devices carrying copies
	// of the same social facts). 0 = fully disjoint providers.
	OverlapFraction float64
	// OverlapCopies is the number of additional providers a replicated
	// fact is copied to (default 1). Set close to Providers to model
	// widely known public facts.
	OverlapCopies int
	// KnowsNothingFraction adds ns:knowsNothingAbout edges (the paper's
	// running example predicate) for this fraction of persons.
	KnowsNothingFraction float64
	// Seed makes the run reproducible.
	Seed int64
	// Rng supplies the base random stream directly, overriding Seed; when
	// nil, a stream is seeded from Seed. Injection lets a driver derive all
	// of a run's randomness from one master source. (Overlap replication
	// draws from its own Seed-derived stream either way — see Generate.)
	Rng *rand.Rand
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Persons <= 0 {
		c.Persons = 100
	}
	if c.Providers <= 0 {
		c.Providers = 4
	}
	if c.AvgKnows <= 0 {
		c.AvgKnows = 3
	}
	if c.KnowsNothingFraction == 0 {
		c.KnowsNothingFraction = 0.2
	}
	return c
}

// Dataset is the generated workload: triples partitioned by provider.
type Dataset struct {
	// ByProvider maps provider name (e.g. "D03") to its triples.
	ByProvider map[string][]rdf.Triple
	// Persons lists the person IRIs in generation order.
	Persons []rdf.Term
	// PopularPerson is the most-referenced person (useful as a
	// high-frequency query constant).
	PopularPerson rdf.Term
	// RarePerson is a least-referenced person.
	RarePerson rdf.Term
}

// Providers returns the provider names in deterministic order.
func (d *Dataset) Providers() []string {
	out := make([]string, 0, len(d.ByProvider))
	for i := 0; i < len(d.ByProvider); i++ {
		out = append(out, providerName(i))
	}
	return out
}

// TotalTriples counts all triples across providers.
func (d *Dataset) TotalTriples() int {
	n := 0
	for _, ts := range d.ByProvider {
		n += len(ts)
	}
	return n
}

func providerName(i int) string { return fmt.Sprintf("D%02d", i) }

// PersonIRI returns the IRI term of person i.
func PersonIRI(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sp%04d", Base, i))
}

// Generate builds a deterministic FOAF-style dataset.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	// Overlap decisions draw from their own stream so that toggling
	// OverlapFraction only adds copies without perturbing the base data.
	overlapRng := rand.New(rand.NewSource(cfg.Seed ^ 0x5deece66d))

	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Persons-1))
	}
	pick := func() int {
		if zipf != nil {
			return int(zipf.Uint64())
		}
		return rng.Intn(cfg.Persons)
	}

	d := &Dataset{ByProvider: map[string][]rdf.Triple{}}
	refCount := make([]int, cfg.Persons)
	providerOf := func(person int) string {
		return providerName(person % cfg.Providers)
	}
	add := func(provider string, t rdf.Triple) {
		d.ByProvider[provider] = append(d.ByProvider[provider], t)
	}

	knowsP := rdf.NewIRI(FOAF + "knows")
	nameP := rdf.NewIRI(FOAF + "name")
	mboxP := rdf.NewIRI(FOAF + "mbox")
	nickP := rdf.NewIRI(FOAF + "nick")
	ageP := rdf.NewIRI(FOAF + "age")
	knaP := rdf.NewIRI(NS + "knowsNothingAbout")

	for i := 0; i < cfg.Persons; i++ {
		person := PersonIRI(i)
		d.Persons = append(d.Persons, person)
		prov := providerOf(i)
		name := fmt.Sprintf("%s %s", firstNames[i%len(firstNames)], lastNames[(i/len(firstNames))%len(lastNames)])
		add(prov, rdf.Triple{S: person, P: nameP, O: rdf.NewLiteral(name)})
		add(prov, rdf.Triple{S: person, P: mboxP, O: rdf.NewIRI(fmt.Sprintf("mailto:p%04d@example.org", i))})
		add(prov, rdf.Triple{S: person, P: ageP, O: rdf.NewInteger(int64(18 + rng.Intn(60)))})
		if rng.Intn(5) == 0 {
			add(prov, rdf.Triple{S: person, P: nickP, O: rdf.NewLiteral(firstNames[rng.Intn(len(firstNames))])})
		}
		// knows edges with optional popularity skew
		degree := 1 + rng.Intn(2*cfg.AvgKnows-1)
		for k := 0; k < degree; k++ {
			j := pick()
			if j == i {
				j = (j + 1) % cfg.Persons
			}
			refCount[j]++
			t := rdf.Triple{S: person, P: knowsP, O: PersonIRI(j)}
			add(prov, t)
			if cfg.OverlapFraction > 0 && overlapRng.Float64() < cfg.OverlapFraction {
				// the same fact also known by other providers, starting
				// with the target's own
				copies := cfg.OverlapCopies
				if copies <= 0 {
					copies = 1
				}
				for c := 0; c < copies; c++ {
					other := providerName((j + c) % cfg.Providers)
					if other != prov {
						add(other, t)
					}
				}
			}
		}
		if rng.Float64() < cfg.KnowsNothingFraction {
			j := pick()
			if j == i {
				j = (j + 1) % cfg.Persons
			}
			add(prov, rdf.Triple{S: person, P: knaP, O: PersonIRI(j)})
		}
	}
	// ensure every provider exists even if it received no person
	for i := 0; i < cfg.Providers; i++ {
		if _, ok := d.ByProvider[providerName(i)]; !ok {
			d.ByProvider[providerName(i)] = nil
		}
	}
	// identify popular and rare persons
	best, worst := 0, 0
	for i, c := range refCount {
		if c > refCount[best] {
			best = i
		}
		if c < refCount[worst] {
			worst = i
		}
	}
	d.PopularPerson = PersonIRI(best)
	d.RarePerson = PersonIRI(worst)
	return d
}

// UnionGraph merges all providers' triples into one graph — the
// centralized oracle dataset (the union of all storage-node triples,
// Sect. IV-A).
func (d *Dataset) UnionGraph() *rdf.Graph {
	g := rdf.NewGraph()
	for _, ts := range d.ByProvider {
		g.AddAll(ts)
	}
	return g
}
