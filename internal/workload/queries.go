package workload

import (
	"fmt"

	"adhocshare/internal/rdf"
)

// prologue is the PREFIX block shared by all generated queries.
const prologue = `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
`

// QueryPrimitive is the Fig. 5 template: a single triple pattern asking
// who knows the given person.
func QueryPrimitive(target rdf.Term) string {
	return fmt.Sprintf(prologue+`SELECT ?x WHERE { ?x foaf:knows %s . }`, target)
}

// QueryConjunction is the Fig. 6 template: a two-pattern BGP.
func QueryConjunction() string {
	return prologue + `SELECT ?x ?y ?z WHERE {
  ?x foaf:knows ?z .
  ?x ns:knowsNothingAbout ?y .
}`
}

// QueryOptional is the Fig. 7 template: a BGP with an OPTIONAL part.
func QueryOptional(nameRegex string) string {
	return fmt.Sprintf(prologue+`SELECT ?x ?y ?n WHERE {
  { ?x foaf:name ?n .
    ?x foaf:knows ?y . FILTER regex(?n, %q) }
  OPTIONAL { ?y foaf:nick ?k . }
}`, nameRegex)
}

// QueryUnion is the Fig. 8 template: two alternative conjunctions.
func QueryUnion(person rdf.Term) string {
	return fmt.Sprintf(prologue+`SELECT ?x ?y ?z WHERE {
  { ?x foaf:knows %s . ?x foaf:knows ?y . }
  UNION
  { ?x ns:knowsNothingAbout %s . ?x foaf:name ?z . }
}`, person, person)
}

// QueryFilter is the Fig. 9 template: a filter plus an optional pattern.
func QueryFilter(nameRegex string) string {
	return fmt.Sprintf(prologue+`SELECT ?x ?y ?z WHERE {
  ?x foaf:name ?name ;
     ns:knowsNothingAbout ?y .
  FILTER regex(?name, %q)
  OPTIONAL { ?y foaf:knows ?z . }
}`, nameRegex)
}

// QueryFig4 is the paper's Fig. 4 query: a four-pattern BGP with a regex
// filter and descending order.
func QueryFig4(nameRegex string) string {
	return fmt.Sprintf(prologue+`SELECT ?x ?y ?z
WHERE {
  ?x foaf:name ?name .
  ?x foaf:knows ?z .
  ?x ns:knowsNothingAbout ?y .
  ?y foaf:knows ?z .
  FILTER regex(?name, %q)
}
ORDER BY DESC(?x)`, nameRegex)
}

// QueryAgeRange exercises numeric filters.
func QueryAgeRange(lo, hi int) string {
	return fmt.Sprintf(prologue+`SELECT ?x ?a WHERE {
  ?x foaf:age ?a .
  FILTER(?a >= %d && ?a < %d)
}`, lo, hi)
}

// QueryAll is the all-variable flood pattern.
func QueryAll() string {
	return `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`
}
