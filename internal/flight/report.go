package flight

import (
	"fmt"
	"io"
	"sort"

	"adhocshare/internal/trace"
)

// Incident is a bounded causality report: the violations (or harness
// failure) that triggered it, the last N retained events of the involved
// nodes merged by virtual time, and — when the incident is tied to a
// query — that query's trace tree.
type Incident struct {
	// Title names the incident ("replica-epoch violation",
	// "TestE9… failed", …).
	Title string
	// Query is the trace identifier of the implicated query (zero when
	// the incident is not query-scoped).
	Query uint64
	// Violations are the monitor findings, sorted deterministically.
	Violations []Violation
	// Nodes are the involved nodes, sorted.
	Nodes []string
	// Events are the merged last-N events of the involved nodes, in
	// canonical order.
	Events []Event
	// Spans is the query's trace tree (may be empty).
	Spans []trace.Span
}

// BuildIncident assembles an incident from the recorder. nodes selects
// whose rings to merge; when empty, the union of the violations' nodes
// is used, and failing that every node with retained events. lastN
// bounds the events taken per node (≤ 0 means the whole ring). spans,
// when non-empty, should be the implicated query's trace (already
// filtered or filterable by Query).
func BuildIncident(rec *Recorder, title string, violations []Violation, nodes []string, lastN int, query uint64, spans []trace.Span) *Incident {
	vs := append([]Violation(nil), violations...)
	SortViolations(vs)
	if len(nodes) == 0 {
		seen := map[string]bool{}
		for _, v := range vs {
			for _, n := range v.Nodes {
				if !seen[n] {
					seen[n] = true
					nodes = append(nodes, n)
				}
			}
		}
	}
	if len(nodes) == 0 {
		nodes = rec.Nodes()
	}
	nodes = append([]string(nil), nodes...)
	sort.Strings(nodes)
	var events []Event
	for _, n := range nodes {
		events = append(events, rec.LastN(n, lastN)...)
	}
	SortEvents(events)
	return &Incident{
		Title:      title,
		Query:      query,
		Violations: vs,
		Nodes:      nodes,
		Events:     events,
		Spans:      spans,
	}
}

// Write renders the incident as a deterministic plain-text causality
// report: violations first, then the merged event timeline, then the
// query's trace tree.
func (inc *Incident) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "INCIDENT: %s\n", inc.Title); err != nil {
		return err
	}
	if inc.Query != 0 {
		if _, err := fmt.Fprintf(w, "query: %#x\n", inc.Query); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "nodes: %v\n", inc.Nodes); err != nil {
		return err
	}
	if len(inc.Violations) > 0 {
		if _, err := fmt.Fprintf(w, "\nviolations (%d):\n", len(inc.Violations)); err != nil {
			return err
		}
		for _, v := range inc.Violations {
			if _, err := fmt.Fprintf(w, "  %s\n", v); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "\nevent timeline (%d events, merged by vtime):\n", len(inc.Events)); err != nil {
		return err
	}
	for _, e := range inc.Events {
		if err := writeEvent(w, e); err != nil {
			return err
		}
	}
	if len(inc.Spans) > 0 {
		if _, err := fmt.Fprintf(w, "\ntrace tree:\n"); err != nil {
			return err
		}
		if err := trace.WriteTree(w, inc.Spans); err != nil {
			return err
		}
	}
	return nil
}

func writeEvent(w io.Writer, e Event) error {
	line := fmt.Sprintf("  vt=%-12d %-16s %s", e.VT, e.Kind, e.Node)
	if e.Method != "" {
		line += " " + e.Method
	}
	if e.Peer != "" {
		line += " -> " + e.Peer
	}
	if e.Query != 0 {
		line += fmt.Sprintf(" q=%#x", e.Query)
	}
	if e.Note != "" {
		line += " (" + e.Note + ")"
	}
	_, err := fmt.Fprintln(w, line)
	return err
}
