package flight

import (
	"fmt"
	"sort"
)

// Monitor names, used as the Monitor field of typed violations. The
// event-stream monitors (vtime-monotonic, traffic-conservation) live
// here; the topology probes (ring-consistency, coverage, replica-epoch)
// live next to the overlay state they inspect and use the same names.
const (
	MonitorMonotonic    = "vtime-monotonic"
	MonitorConservation = "traffic-conservation"
	MonitorRing         = "ring-consistency"
	MonitorCoverage     = "coverage"
	MonitorReplicaEpoch = "replica-epoch"
)

// Violation is one typed invariant breach.
type Violation struct {
	// Monitor is the Monitor* constant that fired.
	Monitor string
	// Nodes are the offending nodes, sorted.
	Nodes []string
	// VT is the virtual time the violation is attributed to.
	VT int64
	// Detail is a one-line human description.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] vt=%d nodes=%v: %s", v.Monitor, v.VT, v.Nodes, v.Detail)
}

// SortViolations orders violations deterministically (VT, monitor,
// detail).
func SortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.VT != b.VT {
			return a.VT < b.VT
		}
		if a.Monitor != b.Monitor {
			return a.Monitor < b.Monitor
		}
		return a.Detail < b.Detail
	})
}

// CheckMonotonic verifies per-node VTime sanity over the retained
// events: every event's interval is well formed (0 ≤ VT ≤ End) and each
// node's event sequence never moves backwards in virtual time.
func (r *Recorder) CheckMonotonic() []Violation {
	if r == nil {
		return nil
	}
	var out []Violation
	for _, node := range r.Nodes() {
		prev := int64(-1)
		for _, e := range r.NodeEvents(node) {
			if e.VT < 0 || e.End < e.VT {
				out = append(out, Violation{
					Monitor: MonitorMonotonic,
					Nodes:   []string{node},
					VT:      e.VT,
					Detail:  fmt.Sprintf("event %s %s has inverted interval [%d,%d]", e.Kind, e.Method, e.VT, e.End),
				})
				continue
			}
			if e.VT < prev {
				out = append(out, Violation{
					Monitor: MonitorMonotonic,
					Nodes:   []string{node},
					VT:      e.VT,
					Detail:  fmt.Sprintf("event %s %s at vt=%d behind node watermark %d", e.Kind, e.Method, e.VT, prev),
				})
				continue
			}
			prev = e.VT
		}
	}
	return out
}

// CheckConservation verifies traffic conservation against the fabric's
// own accounting: every accounted message leg since arming must have
// produced exactly one terminal leg event — delivered, recorded lost, or
// unreachable. accountedMsgs is the fabric's message count delta since
// the recorder was armed.
func (r *Recorder) CheckConservation(accountedMsgs int64) []Violation {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	observed := r.counts[KindDeliver] + r.counts[KindLost] + r.counts[KindUnreachable]
	delivered, lost, unreachable := r.counts[KindDeliver], r.counts[KindLost], r.counts[KindUnreachable]
	r.mu.Unlock()
	if observed == accountedMsgs {
		return nil
	}
	return []Violation{{
		Monitor: MonitorConservation,
		Detail: fmt.Sprintf("accounted %d message legs but observed %d (deliver=%d lost=%d unreachable=%d)",
			accountedMsgs, observed, delivered, lost, unreachable),
	}}
}
