package flight

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func TestNilRecorderIsSafeAndFree(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatalf("nil recorder reports enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Emit(Event{Node: "a", Kind: KindDeliver, VT: 1})
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates: %v allocs/op", allocs)
	}
	if r.Events() != nil || r.Nodes() != nil || r.Count(KindDeliver) != 0 || r.Total() != 0 {
		t.Fatalf("nil recorder returned non-empty state")
	}
	r.Reset() // must not panic
	if got := r.CheckMonotonic(); got != nil {
		t.Fatalf("nil recorder monotonic check = %v", got)
	}
	if got := r.CheckConservation(5); got != nil {
		t.Fatalf("nil recorder conservation check = %v", got)
	}
}

// mixEvents is a fixed multiset of events large enough to overflow a
// small ring.
func mixEvents() []Event {
	var evs []Event
	for i := 0; i < 40; i++ {
		evs = append(evs, Event{
			Node:   "n1",
			Kind:   KindDeliver,
			VT:     int64(i * 10),
			End:    int64(i*10 + 5),
			Peer:   "n2",
			Method: "chord.find_successor",
			Query:  uint64(i % 3),
		})
	}
	evs = append(evs,
		Event{Node: "n1", Kind: KindLost, VT: 95, End: 95, Peer: "n3", Method: "overlay.lookup"},
		Event{Node: "n2", Kind: KindStabilize, VT: 50, End: 60},
		Event{Node: "n2", Kind: KindEpochBump, VT: 70, End: 70, Note: "epoch 2"},
	)
	return evs
}

func TestRingEvictionIsInsertionOrderIndependent(t *testing.T) {
	base := mixEvents()
	build := func(seed int64) *Recorder {
		evs := append([]Event(nil), base...)
		rand.New(rand.NewSource(seed)).Shuffle(len(evs), func(i, j int) { evs[i], evs[j] = evs[j], evs[i] })
		r := NewRecorder(16)
		for _, e := range evs {
			r.Emit(e)
		}
		return r
	}
	want := build(1)
	for seed := int64(2); seed <= 6; seed++ {
		got := build(seed)
		if !reflect.DeepEqual(got.Events(), want.Events()) {
			t.Fatalf("retained events differ between insertion orders (seed %d)", seed)
		}
		if !reflect.DeepEqual(got.Counts(), want.Counts()) {
			t.Fatalf("counters differ between insertion orders (seed %d)", seed)
		}
	}
	if n := len(want.NodeEvents("n1")); n != 16 {
		t.Fatalf("ring size = %d, want capacity 16", n)
	}
	// The ring keeps the canonically latest events: of n1's 41 events
	// (deliveries at vt 0..390 plus a loss at 95), the retained 16 are
	// the deliveries at vt 240..390.
	n1 := want.NodeEvents("n1")
	if n1[0].VT != 240 || n1[len(n1)-1].VT != 390 {
		t.Fatalf("retained window [%d,%d], want [240,390]", n1[0].VT, n1[len(n1)-1].VT)
	}
}

func TestCountersSurviveEviction(t *testing.T) {
	r := NewRecorder(4)
	for _, e := range mixEvents() {
		r.Emit(e)
	}
	if got := r.Count(KindDeliver); got != 40 {
		t.Fatalf("deliver count = %d, want 40 despite eviction", got)
	}
	if got := r.Count(KindLost); got != 1 {
		t.Fatalf("lost count = %d, want 1", got)
	}
	if got := r.Total(); got != 43 {
		t.Fatalf("total = %d, want 43", got)
	}
	// Conservation holds on counters even though most events were evicted.
	if vs := r.CheckConservation(41); len(vs) != 0 {
		t.Fatalf("conservation violated on intact counters: %v", vs)
	}
	if vs := r.CheckConservation(40); len(vs) != 1 || vs[0].Monitor != MonitorConservation {
		t.Fatalf("conservation mismatch not reported: %v", vs)
	}
}

func TestEmitIsAllocationFreeAtCapacity(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 16; i++ {
		r.Emit(Event{Node: "a", Kind: KindDeliver, VT: int64(i)})
	}
	vt := int64(16)
	allocs := testing.AllocsPerRun(200, func() {
		r.Emit(Event{Node: "a", Kind: KindDeliver, VT: vt})
		vt++
	})
	if allocs != 0 {
		t.Fatalf("Emit at capacity allocates: %v allocs/op", allocs)
	}
}

func TestCheckMonotonic(t *testing.T) {
	r := NewRecorder(8)
	r.Emit(Event{Node: "a", Kind: KindDeliver, VT: 10, End: 20})
	r.Emit(Event{Node: "a", Kind: KindDeliver, VT: 30, End: 40})
	if vs := r.CheckMonotonic(); len(vs) != 0 {
		t.Fatalf("clean log reported violations: %v", vs)
	}
	r.Emit(Event{Node: "a", Kind: KindDeliver, VT: 50, End: 45}) // inverted interval
	vs := r.CheckMonotonic()
	if len(vs) != 1 || vs[0].Monitor != MonitorMonotonic {
		t.Fatalf("inverted interval not caught: %v", vs)
	}
	if len(vs[0].Nodes) != 1 || vs[0].Nodes[0] != "a" {
		t.Fatalf("violation does not name offending node: %v", vs[0])
	}
}

func TestIncidentReportDeterministic(t *testing.T) {
	build := func() string {
		r := NewRecorder(8)
		for _, e := range mixEvents() {
			r.Emit(e)
		}
		vs := []Violation{{Monitor: MonitorRing, Nodes: []string{"n2", "n1"}, VT: 60, Detail: "successor disagreement"}}
		inc := BuildIncident(r, "test incident", vs, nil, 4, 0x42, nil)
		var buf bytes.Buffer
		if err := inc.Write(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		return buf.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("incident report not deterministic:\n%s\n---\n%s", a, b)
	}
	if !bytes.Contains([]byte(a), []byte("ring-consistency")) || !bytes.Contains([]byte(a), []byte("n1")) {
		t.Fatalf("report missing monitor or node name:\n%s", a)
	}
}
