// Package flight is the always-on flight recorder of the simulated
// deployment: a bounded, per-node ring of typed, VTime-stamped events
// (message deliveries and losses, ring maintenance, epoch bumps,
// hot-replica coherence traffic, query stage transitions) that the
// invariant monitors consume and incident reports are built from.
//
// Like the trace package it is a leaf with a strictly observational
// contract: events are keyed to virtual time only, a nil *Recorder
// disables everything (every method is nil-safe and the disabled path
// allocates nothing), and recording never changes accounted messages,
// bytes or VTimes.
//
// Determinism under concurrent delivery: with
// simnet.Config.ConcurrentDelivery the *insertion order* of events is a
// goroutine race, but the event multiset of a seeded run is fixed. Each
// node's ring therefore keeps its events sorted in a canonical total
// order and, at capacity, evicts the canonically smallest (earliest)
// event — so the retained contents depend only on the multiset, never on
// scheduling, and same-seed runs produce byte-identical logs even at
// capacity. Per-kind counters are never evicted, which is what keeps the
// traffic-conservation monitor exact however small the rings are.
package flight

import (
	"sort"
	"sync"
)

// Event kinds. Message-leg kinds (Deliver, Lost, Unreachable) pair one to
// one with the fabric's accounted message legs — the invariant the
// conservation monitor checks.
const (
	// KindDeliver is one message leg that arrived (a call's request and
	// response legs are two events, like two accounted messages).
	KindDeliver = "deliver"
	// KindLost is a message leg dropped by the fault plan.
	KindLost = "lost"
	// KindUnreachable is a message leg sent to a failed/crashed node.
	KindUnreachable = "unreachable"
	// KindRetry is a routing-level fallback to another candidate after a
	// failed attempt.
	KindRetry = "retry"

	// KindJoin, KindStabilize and KindEvict are Chord ring maintenance.
	KindJoin      = "chord.join"
	KindStabilize = "chord.stabilize"
	KindEvict     = "chord.evict"

	// KindFail and KindRecover are operator-driven crash/recovery marks.
	KindFail    = "node.fail"
	KindRecover = "node.recover"

	// KindEpochBump is a stabilization-epoch advance (owner caches and hot
	// replicas invalidated).
	KindEpochBump = "epoch.bump"

	// KindHotPush, KindHotRead and KindHotInval are the hot-replica
	// lifecycle: a copy pushed to a holder, a replica read served, a stale
	// copy discarded on epoch mismatch.
	KindHotPush  = "hot.push"
	KindHotRead  = "hot.read"
	KindHotInval = "hot.invalidate"

	// KindStage is a distributed-query stage transition at the initiator;
	// KindPartial marks a query that completed with typed partial failure.
	KindStage   = "query.stage"
	KindPartial = "query.partial"
)

// Event is one recorded occurrence on one node. All fields are value
// types (strings and integers), so an Event is wire-safe by construction
// — though events never travel on the wire: they have zero wire
// footprint by contract.
type Event struct {
	// Node is the node the event belongs to (the ring it lands in). For
	// message legs this is the sender of the leg.
	Node string
	// Kind is one of the Kind* constants.
	Kind string
	// VT and End are the event's virtual interval in nanoseconds since
	// the simulation epoch (End ≥ VT; equal for instantaneous events).
	VT  int64
	End int64
	// Peer is the other endpoint, when there is one.
	Peer string
	// Method is the RPC method or operation name.
	Method string
	// Query is the trace identifier correlating the event with a span
	// tree (zero = untraced).
	Query uint64
	// Note is a short human annotation ("error", an epoch number, …).
	Note string
}

// Less is the canonical total order over events: virtual time first,
// then every remaining field, so equal event multisets sort
// byte-identically whatever order they were emitted in.
func Less(a, b Event) bool {
	if a.VT != b.VT {
		return a.VT < b.VT
	}
	if a.End != b.End {
		return a.End < b.End
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Method != b.Method {
		return a.Method < b.Method
	}
	if a.Peer != b.Peer {
		return a.Peer < b.Peer
	}
	if a.Query != b.Query {
		return a.Query < b.Query
	}
	return a.Note < b.Note
}

// SortEvents orders events canonically in place.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool { return Less(events[i], events[j]) })
}

// DefaultRingSize is the per-node event capacity used when callers pass
// a non-positive size.
const DefaultRingSize = 256

// ring is one node's bounded event log, kept sorted in canonical order.
type ring struct {
	events []Event // sorted ascending by Less; cap is size+1
}

// Recorder is the flight recorder: per-node bounded rings plus unbounded
// per-kind counters. A nil *Recorder is the disabled recorder — every
// method is nil-safe and the disabled path performs no work and no
// allocation. Safe for concurrent use.
type Recorder struct {
	// size is the per-node ring capacity, immutable after construction,
	// so it is readable without the lock.
	size int

	mu     sync.Mutex
	rings  map[string]*ring
	counts map[string]int64
	total  int64
}

// NewRecorder creates a recorder holding up to size events per node
// (DefaultRingSize when size ≤ 0).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Recorder{
		size:   size,
		rings:  map[string]*ring{},
		counts: map[string]int64{},
	}
}

// Enabled reports whether the recorder records anything (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Size returns the per-node ring capacity (0 for nil).
func (r *Recorder) Size() int {
	if r == nil {
		return 0
	}
	return r.size
}

// Emit records one event: the per-kind counter always advances, and the
// event is inserted into its node's ring at its canonical position,
// evicting the canonically earliest event once the ring is full. After a
// node's ring reaches capacity, emission is allocation-free.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counts[e.Kind]++
	r.total++
	rg, ok := r.rings[e.Node]
	if !ok {
		rg = &ring{events: make([]Event, 0, r.size+1)}
		r.rings[e.Node] = rg
	}
	idx := sort.Search(len(rg.events), func(i int) bool { return Less(e, rg.events[i]) })
	rg.events = append(rg.events, Event{})
	copy(rg.events[idx+1:], rg.events[idx:])
	rg.events[idx] = e
	if len(rg.events) > r.size {
		copy(rg.events, rg.events[1:])
		rg.events = rg.events[:r.size]
	}
	r.mu.Unlock()
}

// Nodes lists the nodes with at least one retained event, sorted.
func (r *Recorder) Nodes() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.rings))
	for n := range r.rings {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NodeEvents returns a copy of one node's retained events in canonical
// order.
func (r *Recorder) NodeEvents(node string) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.rings[node]
	if !ok {
		return nil
	}
	return append([]Event(nil), rg.events...)
}

// LastN returns the last (canonically latest) n retained events of one
// node.
func (r *Recorder) LastN(node string, n int) []Event {
	events := r.NodeEvents(node)
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	return events
}

// Events returns every retained event across all nodes, merged into one
// canonically ordered slice.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Event
	for _, rg := range r.rings {
		out = append(out, rg.events...)
	}
	r.mu.Unlock()
	SortEvents(out)
	return out
}

// Count returns the number of events of one kind ever emitted (eviction
// never decrements it).
func (r *Recorder) Count(kind string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[kind]
}

// Counts returns a copy of the per-kind counters.
func (r *Recorder) Counts() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// Total returns the number of events ever emitted.
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Reset discards all retained events and counters.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.rings = map[string]*ring{}
	r.counts = map[string]int64{}
	r.total = 0
	r.mu.Unlock()
}
