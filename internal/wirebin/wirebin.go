// Package wirebin holds the primitive append/consume helpers shared by the
// hand-rolled binary payload codecs (ROADMAP item 1: replace the
// reflection-driven gob codec on the hot payload families). Encoders are
// append-style — `dst = wirebin.AppendString(dst, s)` — so one buffer,
// sized up front from SizeBytes, serves a whole payload; decoders consume
// a prefix and return the rest, so composite decoders thread one slice
// through their fields without re-slicing arithmetic.
//
// The encoding is deterministic by construction: varints for integers
// (zig-zag for signed values), length-prefixed raw bytes for strings, and
// no map iteration anywhere without an explicit sort in the caller.
package wirebin

import (
	"encoding/binary"
	"errors"
)

// ErrTruncated reports input that ends inside a value.
var ErrTruncated = errors.New("wirebin: truncated input")

// ErrOverflow reports a varint that does not fit its target width.
var ErrOverflow = errors.New("wirebin: varint overflow")

// maxLen bounds decoded string/collection lengths: a corrupt or hostile
// length prefix must not drive a giant allocation before the (shorter)
// input runs out.
const maxLen = 1 << 30

// AppendUvarint appends an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// Uvarint consumes an unsigned varint.
func Uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		if n == 0 {
			return 0, b, ErrTruncated
		}
		return 0, b, ErrOverflow
	}
	return v, b[n:], nil
}

// AppendVarint appends a zig-zag signed varint.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// Varint consumes a zig-zag signed varint.
func Varint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		if n == 0 {
			return 0, b, ErrTruncated
		}
		return 0, b, ErrOverflow
	}
	return v, b[n:], nil
}

// AppendInt appends an int as a zig-zag varint (ints on the wire may be
// negative: posting frequency deltas encode retractions).
func AppendInt(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}

// Int consumes an int appended by AppendInt.
func Int(b []byte) (int, []byte, error) {
	v, rest, err := Varint(b)
	return int(v), rest, err
}

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// String consumes a length-prefixed string.
func String(b []byte) (string, []byte, error) {
	n, rest, err := Uvarint(b)
	if err != nil {
		return "", b, err
	}
	if n > maxLen || uint64(len(rest)) < n {
		return "", b, ErrTruncated
	}
	return string(rest[:n]), rest[n:], nil
}

// AppendBool appends a boolean as one byte.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// Bool consumes a boolean.
func Bool(b []byte) (bool, []byte, error) {
	if len(b) == 0 {
		return false, b, ErrTruncated
	}
	switch b[0] {
	case 0:
		return false, b[1:], nil
	case 1:
		return true, b[1:], nil
	default:
		return false, b, errors.New("wirebin: invalid boolean byte")
	}
}

// Len consumes a collection length prefix, bounds-checking it against the
// remaining input so a corrupt prefix cannot drive a giant preallocation
// (each element needs at least one input byte).
func Len(b []byte) (int, []byte, error) {
	n, rest, err := Uvarint(b)
	if err != nil {
		return 0, b, err
	}
	if n > maxLen || uint64(len(rest)) < n {
		return 0, b, ErrTruncated
	}
	return int(n), rest, nil
}
