package simnet

import (
	"errors"
	"fmt"
)

// Fault-injection errors. They are distinct so callers can reason about
// handler side effects: a lost request means the handler never ran (safe
// to retry against any handler), while a lost reply means the handler
// completed and only the acknowledgement vanished (retrying re-executes
// the handler, so the handler must be idempotent — see the adhoclint
// faultpath rule's idempotence cross-check).
var (
	// ErrMessageLost indicates the request (or one-way) leg was dropped in
	// transit: the destination handler never ran.
	ErrMessageLost = errors.New("simnet: message lost in transit")
	// ErrReplyLost indicates the response leg was dropped in transit: the
	// destination handler completed, but the caller never learned it.
	ErrReplyLost = errors.New("simnet: reply lost in transit")
)

// IsLost reports whether err is a fault-injected message loss on either
// leg. Lost messages are the retryable failure class: the destination is
// still alive, so re-sending (after the FailTimeout spent discovering the
// loss) can succeed, unlike ErrUnreachable where only a fallback target
// helps.
func IsLost(err error) bool {
	return errors.Is(err, ErrMessageLost) || errors.Is(err, ErrReplyLost)
}

// HandlerRan reports whether the failed operation's destination handler
// executed despite the error — true exactly for reply-leg loss. Callers
// retrying a mutating method on such an error rely on the handler being
// idempotent.
func HandlerRan(err error) bool { return errors.Is(err, ErrReplyLost) }

// CrashWindow schedules a crash in virtual time: the node is unreachable
// for any message whose delivery falls inside [From, Until). Until = 0
// means the node never recovers. Because the window is keyed to VTime,
// a node can die between the hops of a single query — crash-mid-operation
// — while remaining fully deterministic for a given schedule.
type CrashWindow struct {
	Node  Addr
	From  VTime
	Until VTime
}

// covers reports whether t falls inside the window.
func (w CrashWindow) covers(t VTime) bool {
	return t >= w.From && (w.Until == 0 || t < w.Until)
}

// FaultPlan is a deterministic fault-injection schedule. The zero value
// (or a nil plan) injects nothing.
//
// Loss decisions are NOT drawn from a shared RNG stream: concurrent
// fan-out (simnet.Parallel) makes draw order scheduler-dependent, which
// would break same-seed reproducibility. Instead each message leg hashes
// (Seed, from, to, method, direction, departure VTime, size) to a uniform
// value in [0,1) and is dropped when that value falls below LossRate.
// The same leg at the same virtual time always meets the same fate; a
// retry departs later, so it gets an independent draw and can succeed.
type FaultPlan struct {
	// Seed salts every loss draw. Different seeds give independent loss
	// patterns at the same rate.
	Seed int64
	// LossRate is the per-leg drop probability in [0, 1). Every request,
	// response, one-way and transfer leg between distinct nodes draws
	// independently.
	LossRate float64
	// Crashes lists scheduled crash windows, applied on top of message
	// loss. Experiments derive these from the master RNG.
	Crashes []CrashWindow
}

// crashed reports whether addr is inside a scheduled crash window at t.
func (f *FaultPlan) crashed(addr Addr, t VTime) bool {
	if f == nil {
		return false
	}
	for _, w := range f.Crashes {
		if w.Node == addr && w.covers(t) {
			return true
		}
	}
	return false
}

// drop decides the fate of one message leg, purely from the plan seed and
// the leg's coordinates.
func (f *FaultPlan) drop(from, to Addr, method, dir string, at VTime, size int) bool {
	if f == nil || f.LossRate <= 0 {
		return false
	}
	h := mix64(uint64(f.Seed) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ hashString(string(from)))
	h = mix64(h ^ hashString(string(to)))
	h = mix64(h ^ hashString(method))
	h = mix64(h ^ hashString(dir))
	h = mix64(h ^ uint64(at))
	h = mix64(h ^ uint64(size))
	// 53 high bits → uniform float64 in [0, 1).
	return float64(h>>11)/(1<<53) < f.LossRate
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on 64-bit
// words, so any single-bit change in the leg coordinates flips roughly
// half of the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString is FNV-1a over the string bytes.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// SetFaults installs (or, with nil, removes) a fault-injection plan. The
// plan applies to every subsequent Call/Send/Transfer; installing it does
// not disturb metrics or membership.
func (n *Network) SetFaults(plan *FaultPlan) {
	n.faultMu.Lock()
	n.faults = plan
	n.faultMu.Unlock()
}

// Faults returns the installed fault plan (nil = fault-free).
func (n *Network) Faults() *FaultPlan {
	n.faultMu.RLock()
	defer n.faultMu.RUnlock()
	return n.faults
}

// DefaultAttempts is the standard retry budget for lost messages: the
// first try plus two re-sends. At the 1–5% loss rates the experiments
// inject, three independent draws make an unrecovered loss vanishingly
// rare while bounding the FailTimeout a pathological link can accumulate.
const DefaultAttempts = 3

// Retry runs op up to attempts times, re-trying while it fails with a
// fault-injected loss (IsLost). Each attempt starts at the previous
// attempt's completion time, so the FailTimeout charged for discovering a
// loss accumulates on the caller's critical path — the property the
// adhoclint faultpath rule verifies at every retry site. Non-loss errors
// (ErrUnreachable, ErrUnknownNode, application errors) return immediately:
// they need a fallback target or a caller decision, not a re-send.
//
// Callers retrying a mutating method must ensure the handler is idempotent
// (reply-leg loss means it already ran once).
func Retry[T any](attempts int, at VTime, op func(at VTime) (T, VTime, error)) (T, VTime, error) {
	if attempts < 1 {
		attempts = 1
	}
	var (
		v   T
		err error
	)
	now := at
	for i := 0; i < attempts; i++ {
		v, now, err = op(now)
		if err == nil || !IsLost(err) {
			return v, now, err
		}
	}
	return v, now, fmt.Errorf("%w (after %d attempts)", err, attempts)
}
