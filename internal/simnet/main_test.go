package simnet

import (
	"os"
	"testing"

	"adhocshare/internal/testutil"
)

// The fabric delivers synchronously on the caller's goroutine; anything
// still running after the suite is a leak.
func TestMain(m *testing.M) { os.Exit(testutil.VerifyNoLeaks(m)) }
