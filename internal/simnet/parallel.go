package simnet

import "sync"

// DefaultFanout bounds how many branches of a Parallel fan-out occupy host
// goroutines at once when the caller does not choose a bound. The bound is
// a host-resource knob only: virtual time is unaffected, because every
// branch starts at the virtual time its closure captures regardless of
// when the goroutine is scheduled.
const DefaultFanout = 16

// Result is the outcome of one branch of a parallel fan-out.
type Result[T any] struct {
	Value T
	Done  VTime
	Err   error
}

// Parallel runs branch(i) for every i in [0, n) concurrently, with at most
// bound branches in flight at a time (bound <= 0 selects DefaultFanout).
// Results come back indexed by branch — never by completion order — so a
// caller that hands Parallel a deterministically ordered input gets a
// deterministic output no matter how the scheduler interleaves the
// goroutines. The returned VTime is the fan-out's critical path: the max
// of the branch completion times (DESIGN §5), failed branches included,
// since their timeout cost is real. For n == 0 it returns an empty slice
// and VTime 0; callers fold the result into their own clock with MaxTime.
func Parallel[T any](n, bound int, branch func(i int) (T, VTime, error)) ([]Result[T], VTime) {
	out := make([]Result[T], n)
	if n == 0 {
		return out, 0
	}
	if bound <= 0 {
		bound = DefaultFanout
	}
	if bound > n {
		bound = n
	}
	sem := make(chan struct{}, bound)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			v, done, err := branch(i)
			out[i] = Result[T]{Value: v, Done: done, Err: err}
		}(i)
	}
	wg.Wait()
	var done VTime
	for i := range out {
		if out[i].Done > done {
			done = out[i].Done
		}
	}
	return out, done
}

// FirstErr returns the first branch error in branch order (deterministic
// regardless of which branch failed first in wall-clock time), or nil.
func FirstErr[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}
