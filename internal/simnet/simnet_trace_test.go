package simnet

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"adhocshare/internal/trace"
)

// tracedPayload carries a TraceContext like the real RPC messages do.
type tracedPayload struct {
	Size int
	TC   trace.TraceContext
}

func (p tracedPayload) SizeBytes() int               { return p.Size + p.TC.SizeBytes() }
func (p tracedPayload) TraceCtx() trace.TraceContext { return p.TC }

// TestPerDirectionBreakdown locks the shape of the snapshot's direction
// split: a Call is a req plus a resp message, Send is one "send", Transfer
// one "transfer", and the per-method totals equal the sum over directions.
func TestPerDirectionBreakdown(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{})
	n.Register("b", &echoNode{respSize: 10})
	if _, _, err := n.Call("a", "b", "m.call", Bytes(5), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Send("a", "b", "m.send", Bytes(7), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Transfer("a", "b", "m.xfer", Bytes(9), 0); err != nil {
		t.Fatal(err)
	}
	m := n.Metrics()
	if got := m.Directions(); !reflect.DeepEqual(got, []string{DirRequest, DirResponse, DirOneWay, DirTransfer}) &&
		!reflect.DeepEqual(got, []string{"req", "resp", "send", "transfer"}) {
		t.Errorf("directions = %v", got)
	}
	cases := []struct {
		dir, method string
		msgs, bytes int64
	}{
		{DirRequest, "m.call", 1, 5},
		{DirResponse, "m.call", 1, 10},
		{DirOneWay, "m.send", 1, 7},
		{DirTransfer, "m.xfer", 1, 9},
	}
	for _, c := range cases {
		got := m.PerDirection[c.dir][c.method]
		if got.Messages != c.msgs || got.Bytes != c.bytes {
			t.Errorf("PerDirection[%s][%s] = %+v, want {%d %d}", c.dir, c.method, got, c.msgs, c.bytes)
		}
	}
	// Per-method totals are the sum over directions.
	for method, st := range m.PerMethod {
		var msgs, bytes int64
		for _, dm := range m.PerDirection {
			msgs += dm[method].Messages
			bytes += dm[method].Bytes
		}
		if msgs != st.Messages || bytes != st.Bytes {
			t.Errorf("direction sum for %s = {%d %d}, want %+v", method, msgs, bytes, st)
		}
	}
}

// TestPerDirectionErrorAndFailurePaths: an error response is a zero-byte
// resp message; a call to a failed node accounts the request only.
func TestPerDirectionErrorAndFailurePaths(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{})
	n.Register("boom", HandlerFunc(func(at VTime, _ string, _ Payload) (Payload, VTime, error) {
		return nil, at, errors.New("boom")
	}))
	n.Register("dead", &echoNode{})
	n.Fail("dead")
	n.Call("a", "boom", "m.err", Bytes(100), 0)
	n.Call("a", "dead", "m.lost", Bytes(50), 0)
	m := n.Metrics()
	if got := m.PerDirection[DirResponse]["m.err"]; got.Messages != 1 || got.Bytes != 0 {
		t.Errorf("error response = %+v, want 1 message of 0 bytes", got)
	}
	if got := m.PerDirection[DirRequest]["m.lost"]; got.Messages != 1 || got.Bytes != 50 {
		t.Errorf("lost request = %+v", got)
	}
	if _, ok := m.PerDirection[DirResponse]["m.lost"]; ok {
		t.Error("failed call must not account a response message")
	}
}

func TestSnapshotSubPerDirection(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{})
	n.Register("b", &echoNode{respSize: 1})
	n.Call("a", "b", "m", Bytes(2), 0)
	before := n.Metrics()
	n.Call("a", "b", "m", Bytes(3), 0)
	n.Send("a", "b", "s", Bytes(4), 0)
	delta := n.Metrics().Sub(before)
	if got := delta.PerDirection[DirRequest]["m"]; got.Messages != 1 || got.Bytes != 3 {
		t.Errorf("req delta = %+v", got)
	}
	if got := delta.PerDirection[DirOneWay]["s"]; got.Messages != 1 || got.Bytes != 4 {
		t.Errorf("send delta = %+v", got)
	}
	// Unchanged cells are omitted, not emitted as zeros.
	if _, ok := delta.PerDirection[DirTransfer]; ok {
		t.Error("delta contains a direction with no traffic")
	}
}

func TestResetMetricsClearsDirections(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{})
	n.Register("b", &echoNode{})
	n.Call("a", "b", "m", Bytes(1), 0)
	n.ResetMetrics()
	m := n.Metrics()
	if m.Messages != 0 || len(m.PerMethod) != 0 || len(m.PerDirection) != 0 {
		t.Errorf("reset left counters behind: %+v", m)
	}
}

// TestRecorderMessageSpans verifies the fabric's span emission: both call
// legs appear with the carried context, swapped endpoints on the response,
// and VTime-derived intervals.
func TestRecorderMessageSpans(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{})
	n.Register("b", &echoNode{respSize: 10})
	buf := trace.NewBuffer()
	n.SetRecorder(buf)
	tc := trace.Root(1).Child(1)
	_, done, err := n.Call("a", "b", "m", tracedPayload{Size: 5, TC: tc}, 0)
	if err != nil {
		t.Fatal(err)
	}
	spans := buf.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want request + response: %+v", len(spans), spans)
	}
	req, resp := spans[0], spans[1]
	if req.Query != 1 || req.ID != tc.Span || req.Parent != tc.Parent {
		t.Errorf("request span identity = %+v, want ctx %+v", req, tc)
	}
	if req.From != "a" || req.To != "b" || req.Bytes != 5 || req.Kind != trace.KindMessage || req.Name != "m" {
		t.Errorf("request span = %+v", req)
	}
	wantResp := tc.Child(trace.ResponseSeq)
	if resp.ID != wantResp.Span || resp.Parent != tc.Span {
		t.Errorf("response span identity = %+v, want derived %+v", resp, wantResp)
	}
	if resp.From != "b" || resp.To != "a" || resp.Bytes != 10 {
		t.Errorf("response span = %+v", resp)
	}
	if req.Start != 0 || req.End <= req.Start || resp.End != int64(done) {
		t.Errorf("span intervals wrong: req %d..%d resp %d..%d done %v",
			req.Start, req.End, resp.Start, resp.End, done)
	}
}

func TestRecorderUntracedAndSelfAndUnreachable(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{})
	n.Register("b", &echoNode{})
	n.Register("dead", &echoNode{})
	n.Fail("dead")
	buf := trace.NewBuffer()
	n.SetRecorder(buf)
	// A payload without a context lands on the query-0 lane.
	n.Call("a", "b", "plain", Bytes(1), 0)
	for _, s := range buf.Spans() {
		if s.Query != 0 {
			t.Errorf("untraced span has query %d: %+v", s.Query, s)
		}
	}
	buf.Reset()
	// Self-calls are free and unrecorded.
	n.Call("a", "a", "local", Bytes(1), 0)
	if buf.Len() != 0 {
		t.Errorf("self call recorded %d spans", buf.Len())
	}
	// Unreachable destinations record the lost request with a note.
	n.Call("a", "dead", "m", Bytes(1), 0)
	spans := buf.Spans()
	if len(spans) != 1 || spans[0].Note != "unreachable" {
		t.Errorf("unreachable spans = %+v", spans)
	}
	// Send and Transfer each record one message span.
	buf.Reset()
	n.Send("a", "b", "s", Bytes(1), 0)
	n.Transfer("a", "b", "t", Bytes(1), 0)
	if buf.Len() != 2 {
		t.Errorf("send+transfer recorded %d spans, want 2", buf.Len())
	}
}

// TestTracingIsObservational: attaching a recorder changes neither the
// accounted traffic nor any virtual completion time.
func TestTracingIsObservational(t *testing.T) {
	run := func(rec trace.Recorder) (Snapshot, VTime) {
		n := New(Config{BaseLatency: time.Millisecond, Bandwidth: 1000, FailTimeout: 10 * time.Millisecond})
		n.Register("a", &echoNode{})
		n.Register("b", &echoNode{respSize: 10})
		n.Register("dead", &echoNode{})
		n.Fail("dead")
		n.SetRecorder(rec)
		var last VTime
		_, d1, _ := n.Call("a", "b", "m", tracedPayload{Size: 5, TC: trace.Root(1)}, 0)
		d2, _ := n.Send("a", "b", "s", Bytes(7), d1)
		d3, _ := n.Transfer("a", "b", "t", Bytes(9), d2)
		_, d4, _ := n.Call("a", "dead", "m", Bytes(1), d3)
		last = d4
		return n.Metrics(), last
	}
	mOff, tOff := run(nil)
	mOn, tOn := run(trace.NewBuffer())
	if tOff != tOn {
		t.Errorf("tracing changed completion time: %v vs %v", tOff, tOn)
	}
	if !reflect.DeepEqual(mOff, mOn) {
		t.Errorf("tracing changed metrics:\noff: %+v\non:  %+v", mOff, mOn)
	}
}

// TestDisabledTracingAllocatesNothing pins the zero-overhead contract: the
// steady-state Call path with a nil recorder performs no allocations (the
// first call warms the per-method metric cells).
func TestDisabledTracingAllocatesNothing(t *testing.T) {
	n := newTestNet()
	resp := Payload(Bytes(1))
	n.Register("b", HandlerFunc(func(at VTime, _ string, _ Payload) (Payload, VTime, error) {
		return resp, at, nil
	}))
	n.Register("a", &echoNode{})
	req := Payload(Bytes(2))
	if _, _, err := n.Call("a", "b", "m", req, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := n.Call("a", "b", "m", req, 0); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled-tracing Call allocates %.1f objects per op, want 0", allocs)
	}
}
