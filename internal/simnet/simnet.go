// Package simnet is a deterministic discrete-cost network simulator. It is
// the testbed substitute for the paper's (unevaluated) ad-hoc deployment:
// every inter-node interaction in the overlay and the distributed query
// processor goes through Network.Call, which accounts messages and bytes
// and advances a virtual clock, so the trade-off the paper reasons about —
// total inter-site data transmission versus response time (Sect. IV-C and
// V) — is measured exactly and reproducibly.
//
// The model: a call from A to B carries a request payload and returns a
// response payload. Each direction costs BaseLatency plus size/Bandwidth
// of virtual time; handler computation is free unless the handler adds
// nested calls, whose cost it threads through explicitly. Parallel fan-out
// completes at the max of the branch completion times; chained forwarding
// accumulates. Failed nodes time out.
package simnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"adhocshare/internal/flight"
	"adhocshare/internal/trace"
)

// Addr identifies a node on the simulated network.
type Addr string

// VTime is a point in virtual time, in nanoseconds since the simulation
// epoch.
type VTime int64

// Add advances a virtual time by a duration.
func (t VTime) Add(d time.Duration) VTime { return t + VTime(d) }

// Duration returns the virtual time as a duration since the epoch.
func (t VTime) Duration() time.Duration { return time.Duration(t) }

func (t VTime) String() string { return time.Duration(t).String() }

// MaxTime returns the latest of the given times — the completion time of a
// parallel fan-out.
func MaxTime(times ...VTime) VTime {
	var m VTime
	for _, t := range times {
		if t > m {
			m = t
		}
	}
	return m
}

// Payload is any message body with a measurable wire size.
type Payload interface {
	SizeBytes() int
}

// Bytes is an opaque payload of a given size, for control messages.
type Bytes int

// SizeBytes implements Payload.
func (b Bytes) SizeBytes() int { return int(b) }

// Handler is implemented by every simulated node. HandleCall receives the
// virtual time at which the request arrives and returns the response along
// with the virtual time at which the response is ready to be sent back
// (at or later than `at`; later when the handler itself made nested calls).
type Handler interface {
	HandleCall(at VTime, method string, req Payload) (resp Payload, done VTime, err error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(at VTime, method string, req Payload) (Payload, VTime, error)

// HandleCall implements Handler.
func (f HandlerFunc) HandleCall(at VTime, method string, req Payload) (Payload, VTime, error) {
	return f(at, method, req)
}

// Errors returned by Call.
var (
	// ErrUnknownNode indicates the destination address was never registered.
	ErrUnknownNode = errors.New("simnet: unknown node")
	// ErrUnreachable indicates the destination node has failed or left.
	ErrUnreachable = errors.New("simnet: node unreachable")
)

// Config parameterizes the cost model.
type Config struct {
	// BaseLatency is the fixed per-message delay (default 2ms), the ad-hoc
	// hop cost.
	BaseLatency time.Duration
	// Bandwidth is the link throughput in bytes per second (default 1 MB/s,
	// a conservative ad-hoc wireless figure).
	Bandwidth float64
	// FailTimeout is the virtual time wasted discovering that a failed node
	// does not answer (default 500ms).
	FailTimeout time.Duration
	// ConcurrentDelivery executes each remote handler invocation on its
	// own goroutine (the per-message server goroutine a real transport
	// would use) instead of inline on the caller's, with a deterministic
	// commit order: the dispatching Call/Send still returns the handler's
	// result synchronously, so virtual times, accounted traffic and
	// location tables are byte-identical to serial delivery. Concurrently
	// in-flight messages (simnet.Parallel fan-outs) get genuinely
	// overlapping handler goroutines plus a seeded scheduling jitter —
	// the mode the `-race` CI job runs to corroborate the adhoclint
	// racefree analysis. See concurrent.go.
	ConcurrentDelivery bool
}

func (c Config) withDefaults() Config {
	if c.BaseLatency <= 0 {
		c.BaseLatency = 2 * time.Millisecond
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = 1 << 20
	}
	if c.FailTimeout <= 0 {
		c.FailTimeout = 500 * time.Millisecond
	}
	return c
}

// Message directions used as keys of Snapshot.PerDirection. A Call is two
// accounted messages (request + response); Send and Transfer are one each.
const (
	DirRequest  = "req"
	DirResponse = "resp"
	DirOneWay   = "send"
	DirTransfer = "transfer"
)

// Network is the simulated network fabric. It is safe for concurrent use.
type Network struct {
	cfg Config

	// metrics carries its own lock and sits above mu: traffic accounting
	// must never serialize behind the membership lock.
	metrics metrics

	// recMu guards rec, the optional span recorder. Nil means tracing is
	// disabled; the fabric reads it once per operation and skips all span
	// construction on the disabled path.
	recMu sync.RWMutex
	rec   trace.Recorder

	// fltMu guards flt, the optional flight recorder. Nil means the
	// recorder is disabled; the fabric reads it once per operation and the
	// disabled path does no work and allocates nothing (flight events are
	// value structs, so even the armed path adds no per-message heap
	// traffic once rings reach capacity).
	fltMu sync.RWMutex
	flt   *flight.Recorder

	// faultMu guards faults, the optional deterministic fault-injection
	// plan (nil = fault-free). Like the recorder it sits outside mu: loss
	// draws are pure hashes and never block membership changes.
	faultMu sync.RWMutex
	faults  *FaultPlan

	mu     sync.RWMutex
	nodes  map[Addr]Handler
	failed map[Addr]bool
	// linkFactor scales a node's link cost (latency and transfer time);
	// 1.0 (default) is a nominal link, larger is slower. The effective
	// factor of a transfer is the worse endpoint's factor. This models
	// the heterogeneous ad-hoc links that motivate QoS-aware join-site
	// selection (Ye et al., paper Sect. II).
	linkFactor map[Addr]float64
}

type metrics struct {
	mu        sync.Mutex
	messages  int64
	bytes     int64
	perMethod map[string]*MethodStats
	perDir    map[string]map[string]*MethodStats
}

// MethodStats aggregates traffic for one RPC method.
type MethodStats struct {
	Messages int64
	Bytes    int64
}

// Snapshot is a point-in-time copy of the traffic counters.
type Snapshot struct {
	// Messages counts every payload transfer (a call and its response are
	// two messages).
	Messages int64
	// Bytes is the total payload volume.
	Bytes int64
	// PerMethod breaks traffic down by RPC method name.
	PerMethod map[string]MethodStats
	// PerDirection further splits each method's traffic by message
	// direction (DirRequest, DirResponse, DirOneWay, DirTransfer):
	// direction → method → stats. The per-method totals equal the sum
	// over directions.
	PerDirection map[string]map[string]MethodStats
}

// Sub returns the delta s − earlier, for scoping counters to one query.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	out := Snapshot{
		Messages:     s.Messages - earlier.Messages,
		Bytes:        s.Bytes - earlier.Bytes,
		PerMethod:    map[string]MethodStats{},
		PerDirection: map[string]map[string]MethodStats{},
	}
	for k, v := range s.PerMethod {
		d := MethodStats{
			Messages: v.Messages - earlier.PerMethod[k].Messages,
			Bytes:    v.Bytes - earlier.PerMethod[k].Bytes,
		}
		if d.Messages != 0 || d.Bytes != 0 {
			out.PerMethod[k] = d
		}
	}
	for dir, methods := range s.PerDirection {
		for k, v := range methods {
			d := MethodStats{
				Messages: v.Messages - earlier.PerDirection[dir][k].Messages,
				Bytes:    v.Bytes - earlier.PerDirection[dir][k].Bytes,
			}
			if d.Messages != 0 || d.Bytes != 0 {
				if out.PerDirection[dir] == nil {
					out.PerDirection[dir] = map[string]MethodStats{}
				}
				out.PerDirection[dir][k] = d
			}
		}
	}
	return out
}

// Methods lists the method names present in the snapshot, sorted.
func (s Snapshot) Methods() []string {
	out := make([]string, 0, len(s.PerMethod))
	for k := range s.PerMethod {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Directions lists the direction keys present in the snapshot, sorted.
func (s Snapshot) Directions() []string {
	out := make([]string, 0, len(s.PerDirection))
	for k := range s.PerDirection {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// New creates a network with the given cost model.
func New(cfg Config) *Network {
	return &Network{
		cfg:        cfg.withDefaults(),
		nodes:      map[Addr]Handler{},
		failed:     map[Addr]bool{},
		linkFactor: map[Addr]float64{},
	}
}

// Config returns the effective cost-model configuration.
func (n *Network) Config() Config { return n.cfg }

// SetRecorder attaches (or, with nil, detaches) a span recorder. Tracing
// is strictly observational: it never changes accounted messages, bytes,
// or virtual times, and the disabled path allocates nothing.
func (n *Network) SetRecorder(r trace.Recorder) {
	n.recMu.Lock()
	n.rec = r
	n.recMu.Unlock()
}

// Recorder returns the currently attached span recorder (nil = disabled).
func (n *Network) Recorder() trace.Recorder {
	n.recMu.RLock()
	defer n.recMu.RUnlock()
	return n.rec
}

// SetFlightRecorder attaches (or, with nil, detaches) a flight recorder.
// Like tracing it is strictly observational: it never changes accounted
// messages, bytes, or virtual times. Exactly one event is emitted per
// accounted message leg — a delivery, a recorded loss, or an unreachable
// mark — which is the basis of the traffic-conservation monitor.
func (n *Network) SetFlightRecorder(r *flight.Recorder) {
	n.fltMu.Lock()
	n.flt = r
	n.fltMu.Unlock()
}

// FlightRecorder returns the currently attached flight recorder (nil =
// disabled).
func (n *Network) FlightRecorder() *flight.Recorder {
	n.fltMu.RLock()
	defer n.fltMu.RUnlock()
	return n.flt
}

// flightMsg emits the flight event for one message leg. The event lands
// in the sender's ring; kind is the leg's outcome (deliver, lost,
// unreachable).
func flightMsg(flt *flight.Recorder, kind string, tc trace.TraceContext, method string, from, to Addr, start, end VTime, note string) {
	flt.Emit(flight.Event{
		Node:   string(from),
		Kind:   kind,
		VT:     int64(start),
		End:    int64(end),
		Peer:   string(to),
		Method: method,
		Query:  tc.Query,
		Note:   note,
	})
}

// Register attaches a handler at the given address, replacing any previous
// registration and clearing a failure mark.
func (n *Network) Register(addr Addr, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[addr] = h
	delete(n.failed, addr)
}

// Deregister removes a node entirely (graceful departure).
func (n *Network) Deregister(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
	delete(n.failed, addr)
}

// Fail marks a node as crashed: calls to it time out until Recover.
func (n *Network) Fail(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[addr]; ok {
		n.failed[addr] = true
	}
}

// Recover clears a failure mark.
func (n *Network) Recover(addr Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.failed, addr)
}

// Failed reports whether the node is currently marked failed.
func (n *Network) Failed(addr Addr) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.failed[addr]
}

// Alive reports whether the address is registered and not failed.
func (n *Network) Alive(addr Addr) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.nodes[addr]
	return ok && !n.failed[addr]
}

// Nodes returns the registered addresses, sorted.
func (n *Network) Nodes() []Addr {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]Addr, 0, len(n.nodes))
	for a := range n.nodes {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetLinkFactor assigns a link-quality factor to a node: 1.0 nominal,
// larger is proportionally slower. Factors below a small positive floor
// are clamped.
func (n *Network) SetLinkFactor(addr Addr, factor float64) {
	if factor < 0.01 {
		factor = 0.01
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkFactor[addr] = factor
}

// LinkFactor returns the node's link-quality factor (1.0 when unset).
// It is the "QoS monitoring" read used by QoS-aware placement.
func (n *Network) LinkFactor(addr Addr) float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if f, ok := n.linkFactor[addr]; ok {
		return f
	}
	return 1.0
}

// PathFactor is the effective factor of a transfer between two nodes: the
// worse endpoint dominates.
func (n *Network) PathFactor(from, to Addr) float64 {
	ff, tf := n.LinkFactor(from), n.LinkFactor(to)
	if ff > tf {
		return ff
	}
	return tf
}

// transferDelay is the virtual cost of moving size bytes one hop between
// the given endpoints.
func (n *Network) transferDelay(from, to Addr, size int) time.Duration {
	base := n.cfg.BaseLatency + time.Duration(float64(size)/n.cfg.Bandwidth*float64(time.Second))
	return time.Duration(float64(base) * n.PathFactor(from, to))
}

// Call performs a synchronous simulated RPC. The request leaves `from` at
// virtual time `at`; the returned VTime is when the response arrives back
// at `from`. Traffic is accounted in both directions. A call from a node
// to itself is free and does not count as network traffic.
func (n *Network) Call(from, to Addr, method string, req Payload, at VTime) (Payload, VTime, error) {
	n.mu.RLock()
	h, ok := n.nodes[to]
	failed := n.failed[to]
	n.mu.RUnlock()

	if from == to {
		if !ok {
			return nil, at, fmt.Errorf("%w: %s", ErrUnknownNode, to)
		}
		return h.HandleCall(at, method, req)
	}
	if !ok {
		return nil, at, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	rec := n.Recorder()
	flt := n.FlightRecorder()
	faults := n.Faults()
	reqSize := payloadSize(req)
	n.account(method, DirRequest, reqSize)
	if failed || faults.crashed(to, at) {
		// The request is sent (and counted) but never answered.
		lost := at.Add(n.cfg.FailTimeout)
		if rec != nil {
			n.recordMsg(rec, trace.CtxOf(req), method, from, to, reqSize, at, lost, "unreachable")
		}
		if flt != nil {
			flightMsg(flt, flight.KindUnreachable, trace.CtxOf(req), method, from, to, at, lost, "")
		}
		return nil, lost, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	if faults.drop(from, to, method, DirRequest, at, reqSize) {
		// Request leg lost: the handler never runs, and the caller only
		// learns by timing out.
		lost := at.Add(n.cfg.FailTimeout)
		if rec != nil {
			n.recordMsg(rec, trace.CtxOf(req), method, from, to, reqSize, at, lost, "lost")
		}
		if flt != nil {
			flightMsg(flt, flight.KindLost, trace.CtxOf(req), method, from, to, at, lost, "")
		}
		return nil, lost, fmt.Errorf("%w: %s %s", ErrMessageLost, method, to)
	}
	arrive := at.Add(n.transferDelay(from, to, reqSize))
	if faults.crashed(to, arrive) {
		// The node crashed while the request was in flight.
		lost := at.Add(n.cfg.FailTimeout)
		if rec != nil {
			n.recordMsg(rec, trace.CtxOf(req), method, from, to, reqSize, at, lost, "unreachable")
		}
		if flt != nil {
			flightMsg(flt, flight.KindUnreachable, trace.CtxOf(req), method, from, to, at, lost, "in-flight crash")
		}
		return nil, lost, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	if rec != nil {
		n.recordMsg(rec, trace.CtxOf(req), method, from, to, reqSize, at, arrive, "")
	}
	if flt != nil {
		flightMsg(flt, flight.KindDeliver, trace.CtxOf(req), method, from, to, at, arrive, "")
	}
	resp, done, err := n.deliver(h, from, to, method, req, arrive)
	if err != nil {
		// Error responses travel back as a small control message, exempt
		// from loss draws: dropping a 16-byte error ack would only mask
		// the application error behind ErrReplyLost without creating any
		// new caller obligation.
		n.account(method, DirResponse, 0)
		back := done.Add(n.transferDelay(to, from, 16))
		if rec != nil {
			n.recordMsg(rec, trace.CtxOf(req).Child(trace.ResponseSeq), method, to, from, 0, done, back, "error")
		}
		if flt != nil {
			flightMsg(flt, flight.KindDeliver, trace.CtxOf(req), method, to, from, done, back, "error")
		}
		return nil, back, err
	}
	respSize := payloadSize(resp)
	n.account(method, DirResponse, respSize)
	if faults.drop(to, from, method, DirResponse, done, respSize) {
		// Reply leg lost: the handler DID run — its side effects stand —
		// but the caller times out. Retrying re-executes the handler, so
		// retried mutating handlers must be idempotent (faultpath rule).
		lost := done.Add(n.cfg.FailTimeout)
		if rec != nil {
			n.recordMsg(rec, trace.CtxOf(req).Child(trace.ResponseSeq), method, to, from, respSize, done, lost, "lost")
		}
		if flt != nil {
			flightMsg(flt, flight.KindLost, trace.CtxOf(req), method, to, from, done, lost, "reply")
		}
		return nil, lost, fmt.Errorf("%w: %s %s", ErrReplyLost, method, to)
	}
	back := done.Add(n.transferDelay(to, from, respSize))
	if rec != nil {
		n.recordMsg(rec, trace.CtxOf(req).Child(trace.ResponseSeq), method, to, from, respSize, done, back, "")
	}
	if flt != nil {
		flightMsg(flt, flight.KindDeliver, trace.CtxOf(req), method, to, from, done, back, "")
	}
	return resp, back, nil
}

// Send performs a one-way simulated message: it is accounted once and the
// returned time is the arrival time at the destination. The destination
// handler is invoked with the method and payload; its response payload is
// discarded.
func (n *Network) Send(from, to Addr, method string, req Payload, at VTime) (VTime, error) {
	n.mu.RLock()
	h, ok := n.nodes[to]
	failed := n.failed[to]
	n.mu.RUnlock()
	if from == to {
		if !ok {
			return at, fmt.Errorf("%w: %s", ErrUnknownNode, to)
		}
		_, done, err := h.HandleCall(at, method, req)
		return done, err
	}
	if !ok {
		return at, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	rec := n.Recorder()
	flt := n.FlightRecorder()
	faults := n.Faults()
	size := payloadSize(req)
	n.account(method, DirOneWay, size)
	if failed || faults.crashed(to, at) {
		lost := at.Add(n.cfg.FailTimeout)
		if rec != nil {
			n.recordMsg(rec, trace.CtxOf(req), method, from, to, size, at, lost, "unreachable")
		}
		if flt != nil {
			flightMsg(flt, flight.KindUnreachable, trace.CtxOf(req), method, from, to, at, lost, "")
		}
		return lost, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	if faults.drop(from, to, method, DirOneWay, at, size) {
		// A one-way message carries no acknowledgement: the sender's clock
		// advances only by the wire cost it paid, and the loss error is
		// advisory (fire-and-forget senders ignore it by declaration).
		lost := at.Add(n.transferDelay(from, to, size))
		if rec != nil {
			n.recordMsg(rec, trace.CtxOf(req), method, from, to, size, at, lost, "lost")
		}
		if flt != nil {
			flightMsg(flt, flight.KindLost, trace.CtxOf(req), method, from, to, at, lost, "")
		}
		return lost, fmt.Errorf("%w: %s %s", ErrMessageLost, method, to)
	}
	arrive := at.Add(n.transferDelay(from, to, size))
	if faults.crashed(to, arrive) {
		lost := at.Add(n.cfg.FailTimeout)
		if rec != nil {
			n.recordMsg(rec, trace.CtxOf(req), method, from, to, size, at, lost, "unreachable")
		}
		if flt != nil {
			flightMsg(flt, flight.KindUnreachable, trace.CtxOf(req), method, from, to, at, lost, "in-flight crash")
		}
		return lost, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	if rec != nil {
		n.recordMsg(rec, trace.CtxOf(req), method, from, to, size, at, arrive, "")
	}
	if flt != nil {
		flightMsg(flt, flight.KindDeliver, trace.CtxOf(req), method, from, to, at, arrive, "")
	}
	_, done, err := n.deliver(h, from, to, method, req, arrive)
	return done, err
}

// Transfer models pure one-way data movement: the payload is accounted and
// the arrival time at the destination is returned, but no handler runs —
// the caller is responsible for the effect at the destination. This is the
// primitive behind chained sub-query forwarding, where a node processes
// locally and forwards onward without a return transfer. Transfers to
// failed nodes are accounted (the data was sent) and report ErrUnreachable
// after the failure timeout; transfers to unknown nodes fail immediately.
func (n *Network) Transfer(from, to Addr, method string, payload Payload, at VTime) (VTime, error) {
	n.mu.RLock()
	_, ok := n.nodes[to]
	failed := n.failed[to]
	n.mu.RUnlock()
	if from == to {
		if !ok {
			return at, fmt.Errorf("%w: %s", ErrUnknownNode, to)
		}
		return at, nil
	}
	if !ok {
		return at, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	rec := n.Recorder()
	flt := n.FlightRecorder()
	faults := n.Faults()
	size := payloadSize(payload)
	n.account(method, DirTransfer, size)
	if failed || faults.crashed(to, at) {
		lost := at.Add(n.cfg.FailTimeout)
		if rec != nil {
			n.recordMsg(rec, trace.CtxOf(payload), method, from, to, size, at, lost, "unreachable")
		}
		if flt != nil {
			flightMsg(flt, flight.KindUnreachable, trace.CtxOf(payload), method, from, to, at, lost, "")
		}
		return lost, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	if faults.drop(from, to, method, DirTransfer, at, size) {
		// The data never arrives; the sender learns by missing the
		// application-level follow-up and times out.
		lost := at.Add(n.cfg.FailTimeout)
		if rec != nil {
			n.recordMsg(rec, trace.CtxOf(payload), method, from, to, size, at, lost, "lost")
		}
		if flt != nil {
			flightMsg(flt, flight.KindLost, trace.CtxOf(payload), method, from, to, at, lost, "")
		}
		return lost, fmt.Errorf("%w: %s %s", ErrMessageLost, method, to)
	}
	arrive := at.Add(n.transferDelay(from, to, size))
	if faults.crashed(to, arrive) {
		lost := at.Add(n.cfg.FailTimeout)
		if rec != nil {
			n.recordMsg(rec, trace.CtxOf(payload), method, from, to, size, at, lost, "unreachable")
		}
		if flt != nil {
			flightMsg(flt, flight.KindUnreachable, trace.CtxOf(payload), method, from, to, at, lost, "in-flight crash")
		}
		return lost, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	if rec != nil {
		n.recordMsg(rec, trace.CtxOf(payload), method, from, to, size, at, arrive, "")
	}
	if flt != nil {
		flightMsg(flt, flight.KindDeliver, trace.CtxOf(payload), method, from, to, at, arrive, "")
	}
	return arrive, nil
}

func payloadSize(p Payload) int {
	if p == nil {
		return 0
	}
	return p.SizeBytes()
}

// recordMsg emits one message span. The span's identity comes from the
// payload's TraceContext (zero context → the untraced query-0 lane), its
// interval from the charged virtual times, never from wall clocks.
func (n *Network) recordMsg(rec trace.Recorder, tc trace.TraceContext, method string, from, to Addr, size int, start, end VTime, note string) {
	rec.Record(trace.Span{
		Query:  tc.Query,
		ID:     tc.Span,
		Parent: tc.Parent,
		Kind:   trace.KindMessage,
		Name:   method,
		From:   string(from),
		To:     string(to),
		Start:  int64(start),
		End:    int64(end),
		Bytes:  size,
		Note:   note,
	})
}

func (n *Network) account(method, dir string, size int) {
	m := &n.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	m.messages++
	m.bytes += int64(size)
	if m.perMethod == nil {
		m.perMethod = map[string]*MethodStats{}
	}
	st, ok := m.perMethod[method]
	if !ok {
		st = &MethodStats{}
		m.perMethod[method] = st
	}
	st.Messages++
	st.Bytes += int64(size)
	if m.perDir == nil {
		m.perDir = map[string]map[string]*MethodStats{}
	}
	dm, ok := m.perDir[dir]
	if !ok {
		dm = map[string]*MethodStats{}
		m.perDir[dir] = dm
	}
	ds, ok := dm[method]
	if !ok {
		ds = &MethodStats{}
		dm[method] = ds
	}
	ds.Messages++
	ds.Bytes += int64(size)
}

// Metrics returns a snapshot of the traffic counters.
func (n *Network) Metrics() Snapshot {
	m := &n.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Snapshot{
		Messages:     m.messages,
		Bytes:        m.bytes,
		PerMethod:    make(map[string]MethodStats, len(m.perMethod)),
		PerDirection: make(map[string]map[string]MethodStats, len(m.perDir)),
	}
	for k, v := range m.perMethod {
		out.PerMethod[k] = *v
	}
	for dir, methods := range m.perDir {
		dm := make(map[string]MethodStats, len(methods))
		for k, v := range methods {
			dm[k] = *v
		}
		out.PerDirection[dir] = dm
	}
	return out
}

// ResetMetrics zeroes all counters, including the per-direction maps.
func (n *Network) ResetMetrics() {
	m := &n.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	m.messages = 0
	m.bytes = 0
	m.perMethod = map[string]*MethodStats{}
	m.perDir = map[string]map[string]*MethodStats{}
}
