package simnet

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// echoNode answers every call with a fixed-size payload after zero local
// compute time.
type echoNode struct {
	respSize int
	calls    int
	mu       sync.Mutex
}

func (e *echoNode) HandleCall(at VTime, method string, req Payload) (Payload, VTime, error) {
	e.mu.Lock()
	e.calls++
	e.mu.Unlock()
	return Bytes(e.respSize), at, nil
}

func newTestNet() *Network {
	return New(Config{BaseLatency: time.Millisecond, Bandwidth: 1000, FailTimeout: 10 * time.Millisecond})
}

func TestCallBasics(t *testing.T) {
	n := newTestNet()
	e := &echoNode{respSize: 500}
	n.Register("b", e)
	n.Register("a", &echoNode{})

	resp, done, err := n.Call("a", "b", "ping", Bytes(1000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.(Bytes) != 500 {
		t.Errorf("resp = %v", resp)
	}
	// request: 1ms + 1000/1000 B/s = 1ms + 1s; response: 1ms + 0.5s
	want := VTime(2*time.Millisecond + 1500*time.Millisecond)
	if done != want {
		t.Errorf("done = %v, want %v", done, want)
	}
	if e.calls != 1 {
		t.Errorf("handler calls = %d", e.calls)
	}
	m := n.Metrics()
	if m.Messages != 2 {
		t.Errorf("messages = %d, want 2", m.Messages)
	}
	if m.Bytes != 1500 {
		t.Errorf("bytes = %d, want 1500", m.Bytes)
	}
}

func TestSelfCallIsFree(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{respSize: 100})
	_, done, err := n.Call("a", "a", "local", Bytes(1<<20), 42)
	if err != nil {
		t.Fatal(err)
	}
	if done != 42 {
		t.Errorf("self call advanced time to %v", done)
	}
	if m := n.Metrics(); m.Messages != 0 || m.Bytes != 0 {
		t.Errorf("self call accounted traffic: %+v", m)
	}
}

func TestUnknownNode(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{})
	_, _, err := n.Call("a", "ghost", "x", Bytes(1), 0)
	if !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v, want ErrUnknownNode", err)
	}
}

func TestFailedNodeTimesOut(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{})
	n.Register("b", &echoNode{})
	n.Fail("b")
	if n.Alive("b") {
		t.Error("failed node reported alive")
	}
	_, done, err := n.Call("a", "b", "x", Bytes(10), 0)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if done != VTime(10*time.Millisecond) {
		t.Errorf("timeout time = %v", done)
	}
	// request still accounted (it was sent)
	if m := n.Metrics(); m.Messages != 1 {
		t.Errorf("messages = %d, want 1", m.Messages)
	}
	n.Recover("b")
	if _, _, err := n.Call("a", "b", "x", Bytes(10), 0); err != nil {
		t.Errorf("call after recover: %v", err)
	}
}

func TestDeregister(t *testing.T) {
	n := newTestNet()
	n.Register("b", &echoNode{})
	n.Deregister("b")
	if _, _, err := n.Call("a", "b", "x", Bytes(1), 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v", err)
	}
	if len(n.Nodes()) != 0 {
		t.Error("node list not empty after deregister")
	}
}

func TestNestedCallsAccumulateTime(t *testing.T) {
	n := newTestNet()
	n.Register("c", &echoNode{respSize: 0})
	// b forwards to c, threading virtual time
	n.Register("b", HandlerFunc(func(at VTime, method string, req Payload) (Payload, VTime, error) {
		_, done, err := n.Call("b", "c", "fwd", Bytes(0), at)
		return Bytes(0), done, err
	}))
	n.Register("a", &echoNode{})
	_, done, err := n.Call("a", "b", "chain", Bytes(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	// four hops of base latency: a→b, b→c, c→b, b→a
	if done != VTime(4*time.Millisecond) {
		t.Errorf("chained done = %v, want 4ms", done)
	}
	if m := n.Metrics(); m.Messages != 4 {
		t.Errorf("messages = %d, want 4", m.Messages)
	}
}

func TestParallelFanOutTakesMax(t *testing.T) {
	n := New(Config{BaseLatency: time.Millisecond, Bandwidth: 1000})
	n.Register("a", &echoNode{})
	n.Register("fast", &echoNode{respSize: 0})
	n.Register("slow", &echoNode{respSize: 2000}) // 2s response transfer

	_, d1, err := n.Call("a", "fast", "x", Bytes(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := n.Call("a", "slow", "x", Bytes(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if MaxTime(d1, d2) != d2 {
		t.Errorf("max = %v, want slow branch %v", MaxTime(d1, d2), d2)
	}
}

func TestSendOneWay(t *testing.T) {
	n := newTestNet()
	e := &echoNode{}
	n.Register("b", e)
	arrive, err := n.Send("a", "b", "notify", Bytes(1000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if arrive != VTime(time.Millisecond+time.Second) {
		t.Errorf("arrive = %v", arrive)
	}
	if m := n.Metrics(); m.Messages != 1 || m.Bytes != 1000 {
		t.Errorf("one-way accounting wrong: %+v", m)
	}
}

func TestMetricsPerMethodAndReset(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{})
	n.Register("b", &echoNode{respSize: 10})
	n.Call("a", "b", "alpha", Bytes(5), 0)
	n.Call("a", "b", "beta", Bytes(7), 0)
	m := n.Metrics()
	if m.PerMethod["alpha"].Messages != 2 || m.PerMethod["alpha"].Bytes != 15 {
		t.Errorf("alpha stats = %+v", m.PerMethod["alpha"])
	}
	if got := m.Methods(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Errorf("methods = %v", got)
	}
	n.ResetMetrics()
	if m := n.Metrics(); m.Messages != 0 || len(m.PerMethod) != 0 {
		t.Errorf("reset failed: %+v", m)
	}
}

func TestSnapshotSub(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{})
	n.Register("b", &echoNode{respSize: 1})
	n.Call("a", "b", "m", Bytes(1), 0)
	before := n.Metrics()
	n.Call("a", "b", "m", Bytes(3), 0)
	delta := n.Metrics().Sub(before)
	if delta.Messages != 2 || delta.Bytes != 4 {
		t.Errorf("delta = %+v", delta)
	}
	if delta.PerMethod["m"].Bytes != 4 {
		t.Errorf("per-method delta = %+v", delta.PerMethod["m"])
	}
}

func TestErrorResponseStillAccounted(t *testing.T) {
	n := newTestNet()
	n.Register("b", HandlerFunc(func(at VTime, _ string, _ Payload) (Payload, VTime, error) {
		return nil, at, errors.New("boom")
	}))
	_, done, err := n.Call("a2", "b", "x", Bytes(100), 0)
	if err == nil {
		t.Fatal("expected handler error")
	}
	if done <= 0 {
		t.Error("error path should still cost time")
	}
	if m := n.Metrics(); m.Messages != 2 {
		t.Errorf("messages = %d, want 2 (request + error)", m.Messages)
	}
}

func TestConcurrentCallsSafe(t *testing.T) {
	n := newTestNet()
	n.Register("b", &echoNode{respSize: 1})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				n.Call("a", "b", "m", Bytes(1), 0)
			}
		}()
	}
	wg.Wait()
	if m := n.Metrics(); m.Messages != 3200 {
		t.Errorf("messages = %d, want 3200", m.Messages)
	}
}

func TestTransferDelayMonotoneProperty(t *testing.T) {
	n := New(Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20})
	n.Register("a", &echoNode{})
	n.Register("b", &echoNode{})
	f := func(s1, s2 uint16) bool {
		small, big := int(s1), int(s2)
		if small > big {
			small, big = big, small
		}
		_, d1, _ := n.Call("a", "b", "m", Bytes(small), 0)
		_, d2, _ := n.Call("a", "b", "m", Bytes(big), 0)
		return d1 <= d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConfigDefaults(t *testing.T) {
	n := New(Config{})
	cfg := n.Config()
	if cfg.BaseLatency <= 0 || cfg.Bandwidth <= 0 || cfg.FailTimeout <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestLinkFactors(t *testing.T) {
	n := New(Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20})
	n.Register("fast", &echoNode{})
	n.Register("slow", &echoNode{})
	n.Register("src", &echoNode{})
	if f := n.LinkFactor("fast"); f != 1.0 {
		t.Errorf("default factor = %v, want 1.0", f)
	}
	n.SetLinkFactor("slow", 5)
	if f := n.LinkFactor("slow"); f != 5 {
		t.Errorf("factor = %v, want 5", f)
	}
	if pf := n.PathFactor("fast", "slow"); pf != 5 {
		t.Errorf("path factor = %v, want worse endpoint 5", pf)
	}
	if pf := n.PathFactor("fast", "src"); pf != 1 {
		t.Errorf("healthy path factor = %v, want 1", pf)
	}
	// transfers to the slow node take 5x the base latency
	_, dFast, err := n.Call("src", "fast", "m", Bytes(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, dSlow, err := n.Call("src", "slow", "m", Bytes(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if dSlow != 5*dFast {
		t.Errorf("slow call %v, fast call %v — want exactly 5x", dSlow, dFast)
	}
	// clamping
	n.SetLinkFactor("slow", -3)
	if f := n.LinkFactor("slow"); f != 0.01 {
		t.Errorf("clamped factor = %v, want 0.01", f)
	}
}
