package simnet

import "testing"

func TestClockAdvanceMonotonic(t *testing.T) {
	c := NewClock(100)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %v, want 100", got)
	}
	if got := c.Advance(250); got != 250 || c.Now() != 250 {
		t.Errorf("Advance(250) = %v, Now() = %v, want 250", got, c.Now())
	}
	// moving backwards is a no-op
	if got := c.Advance(80); got != 250 || c.Now() != 250 {
		t.Errorf("Advance(80) rewound the clock: %v", c.Now())
	}
	if got := c.Advance(250); got != 250 {
		t.Errorf("Advance(now) changed the clock: %v", got)
	}
}

func TestClockElapse(t *testing.T) {
	c := NewClock(0)
	if got := c.Elapse(40); got != 40 {
		t.Errorf("Elapse(40) = %v, want 40", got)
	}
	if got := c.Elapse(-10); got != 40 {
		t.Errorf("Elapse(-10) moved the clock: %v", got)
	}
}
