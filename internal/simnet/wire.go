package simnet

import (
	"encoding/binary"
	"errors"
)

// errTruncatedBytes reports wire input that ends inside a Bytes payload.
// simnet stays self-contained (no internal/wirebin import): Bytes is the
// only simnet type that travels through the payload codec.
var errTruncatedBytes = errors.New("simnet: truncated Bytes payload")

// EncodeBinary appends the opaque payload's binary wire form (one zig-zag
// varint) to dst, for the hand-rolled codec in internal/dqp.
func (b Bytes) EncodeBinary(dst []byte) []byte {
	return binary.AppendVarint(dst, int64(b))
}

// DecodeBinary consumes one Bytes payload from buf and returns the rest.
func (b *Bytes) DecodeBinary(buf []byte) ([]byte, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return buf, errTruncatedBytes
	}
	*b = Bytes(v)
	return buf[n:], nil
}
