package simnet

// Clock is a monotonic cursor over virtual time. Simulation drivers thread
// one Clock through a deployment instead of shuttling VTime values by
// hand: every completed operation advances it, and it never moves
// backwards, so out-of-order bookkeeping cannot rewind the simulation.
//
// A Clock is not safe for concurrent use; the experiment drivers that own
// one are single-threaded (the fabric synchronizes its own state).
type Clock struct {
	now VTime
}

// NewClock returns a clock positioned at the given virtual time.
func NewClock(start VTime) *Clock { return &Clock{now: start} }

// Now returns the current virtual time.
func (c *Clock) Now() VTime { return c.now }

// Advance moves the clock forward to t and returns the resulting time.
// Times at or before the current position are ignored, keeping the clock
// monotonic: advancing past a parallel fan-out's stragglers is a no-op.
func (c *Clock) Advance(t VTime) VTime {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Elapse advances the clock by a duration and returns the resulting time.
func (c *Clock) Elapse(d VTime) VTime {
	if d > 0 {
		c.now += d
	}
	return c.now
}
