package simnet

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// faultTestDelay mirrors transferDelay for newTestNet's config (1ms base,
// 1000 B/s, nominal links), letting tests predict arrival times.
func faultTestDelay(size int) time.Duration {
	return time.Millisecond + time.Duration(float64(size)/1000*float64(time.Second))
}

// findLegFate scans departure times until the request and response legs of
// one a→b call meet the wanted fates under the plan, so each test can pin
// a deterministic scenario without hard-coding hash values.
func findLegFate(t *testing.T, plan *FaultPlan, reqSize, respSize int, wantReq, wantResp bool) VTime {
	t.Helper()
	for ms := 0; ms < 100000; ms++ {
		at := VTime(time.Duration(ms) * time.Millisecond)
		reqDrop := plan.drop("a", "b", "ping", DirRequest, at, reqSize)
		arrive := at.Add(faultTestDelay(reqSize))
		respDrop := plan.drop("b", "a", "ping", DirResponse, arrive, respSize)
		if reqDrop == wantReq && respDrop == wantResp {
			return at
		}
	}
	t.Fatalf("no departure time found with reqDrop=%v respDrop=%v", wantReq, wantResp)
	return 0
}

func TestFaultRequestLegLoss(t *testing.T) {
	n := newTestNet()
	e := &echoNode{respSize: 200}
	n.Register("a", &echoNode{})
	n.Register("b", e)
	plan := &FaultPlan{Seed: 1, LossRate: 0.3}
	n.SetFaults(plan)

	at := findLegFate(t, plan, 1000, 200, true, false)
	resp, done, err := n.Call("a", "b", "ping", Bytes(1000), at)
	if !errors.Is(err, ErrMessageLost) {
		t.Fatalf("err = %v, want ErrMessageLost", err)
	}
	if resp != nil {
		t.Errorf("resp = %v, want nil", resp)
	}
	if want := at.Add(10 * time.Millisecond); done != want {
		t.Errorf("done = %v, want timeout at %v", done, want)
	}
	if e.calls != 0 {
		t.Errorf("handler ran %d times on a lost request", e.calls)
	}
	if m := n.Metrics(); m.Messages != 1 || m.Bytes != 1000 {
		t.Errorf("lost request not accounted as sent: %+v", m)
	}
	if HandlerRan(err) {
		t.Error("HandlerRan true for request-leg loss")
	}
	if !IsLost(err) {
		t.Error("IsLost false for request-leg loss")
	}
}

func TestFaultReplyLegLoss(t *testing.T) {
	n := newTestNet()
	e := &echoNode{respSize: 200}
	n.Register("a", &echoNode{})
	n.Register("b", e)
	plan := &FaultPlan{Seed: 1, LossRate: 0.3}
	n.SetFaults(plan)

	at := findLegFate(t, plan, 1000, 200, false, true)
	_, done, err := n.Call("a", "b", "ping", Bytes(1000), at)
	if !errors.Is(err, ErrReplyLost) {
		t.Fatalf("err = %v, want ErrReplyLost", err)
	}
	if e.calls != 1 {
		t.Errorf("handler calls = %d, want 1 (reply loss is post-execution)", e.calls)
	}
	arrive := at.Add(faultTestDelay(1000))
	if want := arrive.Add(10 * time.Millisecond); done != want {
		t.Errorf("done = %v, want timeout at %v", done, want)
	}
	if !HandlerRan(err) || !IsLost(err) {
		t.Errorf("HandlerRan/IsLost misclassify reply loss: %v", err)
	}
	// Both legs were put on the wire and accounted.
	if m := n.Metrics(); m.Messages != 2 || m.Bytes != 1200 {
		t.Errorf("metrics = %+v, want both legs accounted", m)
	}
}

func TestFaultLossRateZeroAndSelfCalls(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{respSize: 1})
	n.Register("b", &echoNode{respSize: 1})
	n.SetFaults(&FaultPlan{Seed: 7}) // zero LossRate, no crashes
	for ms := 0; ms < 50; ms++ {
		if _, _, err := n.Call("a", "b", "x", Bytes(10), VTime(ms)); err != nil {
			t.Fatalf("zero-rate plan injected a fault: %v", err)
		}
	}
	n.SetFaults(&FaultPlan{Seed: 7, LossRate: 1})
	if _, _, err := n.Call("a", "a", "x", Bytes(10), 0); err != nil {
		t.Fatalf("self call hit fault injection: %v", err)
	}
	if _, _, err := n.Call("a", "b", "x", Bytes(10), 0); !errors.Is(err, ErrMessageLost) {
		t.Fatalf("rate-1 plan delivered: %v", err)
	}
}

func TestFaultSendAndTransferLoss(t *testing.T) {
	n := newTestNet()
	e := &echoNode{}
	n.Register("a", &echoNode{})
	n.Register("b", e)
	n.SetFaults(&FaultPlan{Seed: 3, LossRate: 1})

	done, err := n.Send("a", "b", "notify", Bytes(100), 0)
	if !errors.Is(err, ErrMessageLost) {
		t.Fatalf("Send err = %v, want ErrMessageLost", err)
	}
	// No acknowledgement is awaited: the sender pays only the wire cost.
	if want := VTime(faultTestDelay(100)); done != want {
		t.Errorf("Send done = %v, want %v", done, want)
	}
	if e.calls != 0 {
		t.Errorf("handler ran %d times on a lost send", e.calls)
	}

	done, err = n.Transfer("a", "b", "ship", Bytes(100), 0)
	if !errors.Is(err, ErrMessageLost) {
		t.Fatalf("Transfer err = %v, want ErrMessageLost", err)
	}
	if want := VTime(10 * time.Millisecond); done != want {
		t.Errorf("Transfer done = %v, want FailTimeout %v", done, want)
	}
	if m := n.Metrics(); m.Messages != 2 || m.Bytes != 200 {
		t.Errorf("lost send/transfer not accounted: %+v", m)
	}
}

func TestFaultCrashWindow(t *testing.T) {
	n := newTestNet()
	e := &echoNode{respSize: 1}
	n.Register("a", &echoNode{})
	n.Register("b", e)
	n.SetFaults(&FaultPlan{Crashes: []CrashWindow{
		{Node: "b", From: VTime(5 * time.Millisecond), Until: VTime(20 * time.Millisecond)},
	}})

	// Before the window: delivered.
	if _, _, err := n.Call("a", "b", "x", Bytes(1), 0); err != nil {
		t.Fatalf("pre-crash call failed: %v", err)
	}
	// Inside the window: unreachable, charged the failure timeout.
	_, done, err := n.Call("a", "b", "x", Bytes(1), VTime(6*time.Millisecond))
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("in-window err = %v, want ErrUnreachable", err)
	}
	if want := VTime(16 * time.Millisecond); done != want {
		t.Errorf("in-window done = %v, want %v", done, want)
	}
	// Departs just before the crash but arrives inside it: lost mid-flight.
	if _, _, err := n.Call("a", "b", "x", Bytes(10), VTime(0)); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("mid-flight crash err = %v, want ErrUnreachable", err)
	}
	// After Until the node has recovered with its state intact.
	if _, _, err := n.Call("a", "b", "x", Bytes(1), VTime(25*time.Millisecond)); err != nil {
		t.Fatalf("post-recovery call failed: %v", err)
	}
	// A window with Until = 0 never recovers.
	n.SetFaults(&FaultPlan{Crashes: []CrashWindow{{Node: "b", From: 0}}})
	if _, _, err := n.Call("a", "b", "x", Bytes(1), VTime(time.Hour)); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("permanent crash err = %v, want ErrUnreachable", err)
	}
}

func TestFaultDeterminism(t *testing.T) {
	// Two networks under the same plan see byte-identical fates and times;
	// a different seed diverges somewhere in the sweep.
	type outcome struct {
		done VTime
		lost bool
	}
	sweep := func(seed int64) []outcome {
		n := newTestNet()
		n.Register("a", &echoNode{})
		n.Register("b", &echoNode{respSize: 64})
		n.SetFaults(&FaultPlan{Seed: seed, LossRate: 0.2})
		var out []outcome
		for ms := 0; ms < 400; ms++ {
			_, done, err := n.Call("a", "b", "m", Bytes(128), VTime(time.Duration(ms)*time.Second))
			out = append(out, outcome{done, err != nil})
		}
		return out
	}
	a, b, c := sweep(11), sweep(11), sweep(12)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("seeds 11 and 12 produced identical fault patterns")
	}
	lost := 0
	for _, o := range a {
		if o.lost {
			lost++
		}
	}
	// Per call two legs draw at ~0.2 each → P(lost) ≈ 0.36; 400 calls give
	// wide but meaningful bounds.
	if lost < 80 || lost > 240 {
		t.Errorf("lost %d/400 calls at rate 0.2, outside plausible range", lost)
	}
}

func TestRetryAccumulatesTimeoutAndSucceeds(t *testing.T) {
	n := newTestNet()
	e := &echoNode{respSize: 200}
	n.Register("a", &echoNode{})
	n.Register("b", e)
	plan := &FaultPlan{Seed: 1, LossRate: 0.3}
	n.SetFaults(plan)

	// Find a departure whose first attempt loses the request leg and whose
	// second attempt (departing at the first's timeout) delivers cleanly.
	var start VTime
	found := false
	for ms := 0; ms < 100000 && !found; ms++ {
		at := VTime(time.Duration(ms) * time.Millisecond)
		retry := at.Add(10 * time.Millisecond)
		arrive := retry.Add(faultTestDelay(1000))
		if plan.drop("a", "b", "ping", DirRequest, at, 1000) &&
			!plan.drop("a", "b", "ping", DirRequest, retry, 1000) &&
			!plan.drop("b", "a", "ping", DirResponse, arrive, 200) {
			start, found = at, true
		}
	}
	if !found {
		t.Fatal("no lose-then-deliver departure time found")
	}

	resp, done, err := Retry(DefaultAttempts, start, func(at VTime) (Payload, VTime, error) {
		return n.Call("a", "b", "ping", Bytes(1000), at)
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if resp.(Bytes) != 200 {
		t.Errorf("resp = %v", resp)
	}
	if e.calls != 1 {
		t.Errorf("handler calls = %d, want 1", e.calls)
	}
	// The failed attempt's FailTimeout stays on the critical path.
	rtt := VTime(faultTestDelay(1000) + faultTestDelay(200))
	if want := start.Add(10 * time.Millisecond) + rtt; done != want {
		t.Errorf("done = %v, want %v (timeout + clean round trip)", done, want)
	}
}

func TestRetryExhaustionAndNonLossErrors(t *testing.T) {
	n := newTestNet()
	n.Register("a", &echoNode{})
	n.Register("b", &echoNode{})
	n.SetFaults(&FaultPlan{Seed: 5, LossRate: 1})

	_, done, err := Retry(3, 0, func(at VTime) (Payload, VTime, error) {
		return n.Call("a", "b", "m", Bytes(10), at)
	})
	if !errors.Is(err, ErrMessageLost) {
		t.Fatalf("err = %v, want wrapped ErrMessageLost", err)
	}
	if want := VTime(30 * time.Millisecond); done != want {
		t.Errorf("done = %v, want 3 accumulated timeouts = %v", done, want)
	}

	// Non-loss errors return immediately, with no retry burned.
	attempts := 0
	sentinel := fmt.Errorf("application rejected")
	_, _, err = Retry(3, 0, func(at VTime) (Payload, VTime, error) {
		attempts++
		return nil, at, sentinel
	})
	if !errors.Is(err, sentinel) || attempts != 1 {
		t.Errorf("non-loss error retried: attempts=%d err=%v", attempts, err)
	}
	n.SetFaults(nil)
	n.Fail("b")
	attempts = 0
	_, _, err = Retry(3, 0, func(at VTime) (Payload, VTime, error) {
		attempts++
		return n.Call("a", "b", "m", Bytes(10), at)
	})
	if !errors.Is(err, ErrUnreachable) || attempts != 1 {
		t.Errorf("unreachable retried in place: attempts=%d err=%v", attempts, err)
	}
}
