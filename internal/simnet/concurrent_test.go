package simnet

import (
	"fmt"
	"testing"
	"time"
)

// newConcurrentTestNet mirrors newTestNet with per-message server
// goroutines enabled.
func newConcurrentTestNet() *Network {
	return New(Config{
		BaseLatency: time.Millisecond, Bandwidth: 1000,
		FailTimeout: 10 * time.Millisecond, ConcurrentDelivery: true,
	})
}

// Concurrent delivery must be invisible in every simulated quantity:
// responses, completion VTimes and traffic metrics match the serial
// fabric exactly, call for call.
func TestConcurrentDeliveryMatchesSerial(t *testing.T) {
	type op struct {
		from, to Addr
		method   string
		size     int
	}
	ops := []op{
		{"a", "b", "ping", 1000},
		{"b", "a", "ping", 300},
		{"a", "a", "self", 10}, // self-calls stay inline in both modes
		{"a", "b", "notify", 64},
	}
	run := func(n *Network) ([]VTime, Snapshot) {
		n.Register("a", &echoNode{respSize: 100})
		n.Register("b", &echoNode{respSize: 500})
		var times []VTime
		now := VTime(0)
		for _, o := range ops {
			_, done, err := n.Call(o.from, o.to, o.method, Bytes(o.size), now)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, done)
			now = done
			sent, err := n.Send(o.from, o.to, o.method, Bytes(o.size), now)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, sent)
		}
		return times, n.Metrics()
	}
	serialTimes, serialMetrics := run(newTestNet())
	concTimes, concMetrics := run(newConcurrentTestNet())
	for i := range serialTimes {
		if serialTimes[i] != concTimes[i] {
			t.Errorf("op %d: done VTime %v under concurrent delivery, want %v", i, concTimes[i], serialTimes[i])
		}
	}
	if fmt.Sprintf("%+v", serialMetrics) != fmt.Sprintf("%+v", concMetrics) {
		t.Errorf("metrics diverged: concurrent %+v, serial %+v", concMetrics, serialMetrics)
	}
}

// Parallel fan-outs are where concurrent delivery actually overlaps
// handler executions; the branch results and join time must still match
// the serial fabric.
func TestConcurrentDeliveryParallelMatchesSerial(t *testing.T) {
	targets := []Addr{"p", "q", "r", "s"}
	run := func(n *Network) ([]Result[Payload], VTime) {
		n.Register("src", &echoNode{})
		for _, a := range targets {
			n.Register(a, &echoNode{respSize: 200})
		}
		return Parallel(len(targets), 0, func(i int) (Payload, VTime, error) {
			return n.Call("src", targets[i], "work", Bytes(400), 0)
		})
	}
	serialRes, serialJoin := run(newTestNet())
	concRes, concJoin := run(newConcurrentTestNet())
	if serialJoin != concJoin {
		t.Errorf("join time %v under concurrent delivery, want %v", concJoin, serialJoin)
	}
	for i := range serialRes {
		if serialRes[i].Done != concRes[i].Done {
			t.Errorf("branch %d: done %v under concurrent delivery, want %v", i, concRes[i].Done, serialRes[i].Done)
		}
		if serialRes[i].Value != concRes[i].Value {
			t.Errorf("branch %d: value %v under concurrent delivery, want %v", i, concRes[i].Value, serialRes[i].Value)
		}
	}
}

// deliveryJitter is a pure function of the message coordinates: stable
// across calls, bounded, and sensitive to each coordinate (so distinct
// legs get distinct host-schedule perturbations).
func TestDeliveryJitterDeterministic(t *testing.T) {
	j := deliveryJitter("a", "b", "ping", 42)
	for i := 0; i < 100; i++ {
		if deliveryJitter("a", "b", "ping", 42) != j {
			t.Fatal("jitter is not deterministic")
		}
	}
	if j < 0 || j > 7 {
		t.Fatalf("jitter %d out of [0,8)", j)
	}
	distinct := map[int]bool{j: true}
	distinct[deliveryJitter("a", "b", "ping", 43)] = true
	distinct[deliveryJitter("a", "c", "ping", 42)] = true
	distinct[deliveryJitter("a", "b", "pong", 42)] = true
	if len(distinct) < 2 {
		t.Error("jitter ignores every message coordinate")
	}
}
