package simnet

import "runtime"

// Concurrent delivery: the per-message server goroutine a real transport
// would use.
//
// The serial fabric invokes every destination handler inline on the
// calling goroutine, so the only handler concurrency the race detector
// ever observes is the one simnet.Parallel fan-outs create. With
// Config.ConcurrentDelivery on, each remote delivery instead runs its
// handler on a fresh goroutine — the shape a TCP/QUIC backend will have
// (ROADMAP item 3) — and the dispatching operation commits the handler's
// result when it returns, in dispatch order. Virtual times, accounted
// traffic and every table derived from them are byte-identical to serial
// delivery; what changes is the host-level schedule: handlers of messages
// that are concurrently in flight execute on independent goroutines, with
// a small deterministic yield jitter derived from the message coordinates
// so `-race` runs explore shifted interleavings without perturbing any
// simulated quantity.

// deliveryResult carries one handler completion back to the dispatching
// fabric operation.
type deliveryResult struct {
	resp Payload
	done VTime
	err  error
}

// deliver runs the destination handler for one arrived message. Serial
// mode invokes it inline; concurrent mode spawns the per-message server
// goroutine and waits for its commit, so callers observe identical
// results either way.
func (n *Network) deliver(h Handler, from, to Addr, method string, req Payload, arrive VTime) (Payload, VTime, error) {
	if !n.cfg.ConcurrentDelivery {
		return h.HandleCall(arrive, method, req)
	}
	ch := make(chan deliveryResult, 1)
	go func() {
		for i := deliveryJitter(from, to, method, arrive); i > 0; i-- {
			runtime.Gosched()
		}
		resp, done, err := h.HandleCall(arrive, method, req)
		ch <- deliveryResult{resp: resp, done: done, err: err}
	}()
	r := <-ch
	return r.resp, r.done, r.err
}

// deliveryJitter derives a per-message yield count in [0, 8) from the leg
// coordinates, the same splitmix64-over-FNV construction the fault plan
// uses for loss draws: a pure function of simulated quantities, so the
// perturbation is reproducible and independent of host scheduling.
func deliveryJitter(from, to Addr, method string, arrive VTime) int {
	h := mix64(0x5de11ce2b0a7c915 ^ hashString(string(from)))
	h = mix64(h ^ hashString(string(to)))
	h = mix64(h ^ hashString(method))
	h = mix64(h ^ uint64(arrive))
	return int(h & 7)
}
