package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseNTriplesBasic(t *testing.T) {
	in := `
# a comment
<http://example.org/alice> <http://xmlns.com/foaf/0.1/knows> <http://example.org/bob> .
<http://example.org/alice> <http://xmlns.com/foaf/0.1/name> "Alice" .
<http://example.org/bob> <http://xmlns.com/foaf/0.1/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b1 <http://example.org/p> "salut"@fr .
`
	ts, err := ParseNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 {
		t.Fatalf("parsed %d triples, want 4", len(ts))
	}
	if ts[0].S != NewIRI("http://example.org/alice") {
		t.Errorf("subject = %v", ts[0].S)
	}
	if ts[1].O != NewLiteral("Alice") {
		t.Errorf("object = %v", ts[1].O)
	}
	if ts[2].O != NewTypedLiteral("42", XSDInteger) {
		t.Errorf("typed object = %v", ts[2].O)
	}
	if ts[3].S != NewBlank("b1") {
		t.Errorf("blank subject = %v", ts[3].S)
	}
	if ts[3].O != NewLangLiteral("salut", "fr") {
		t.Errorf("lang object = %v", ts[3].O)
	}
}

func TestParseNTriplesEscapes(t *testing.T) {
	line := `<http://e/s> <http://e/p> "a\"b\\c\nd\te" .`
	tr, err := ParseNTriplesLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if tr.O.Value != "a\"b\\c\nd\te" {
		t.Errorf("unescaped = %q", tr.O.Value)
	}
	uline := `<http://e/s> <http://e/p> "snowman ☃" .`
	tr, err = ParseNTriplesLine(uline)
	if err != nil {
		t.Fatal(err)
	}
	if tr.O.Value != "snowman ☃" {
		t.Errorf("unicode unescaped = %q", tr.O.Value)
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://e/s> <http://e/p> "unterminated .`,
		`<http://e/s> <http://e/p> <http://e/o>`,     // no dot
		`<http://e/s> <http://e/p> <http://e/o> . x`, // trailing
		`<http://e/s <http://e/p> <http://e/o> .`,    // unterminated IRI
		`<http://e/s> <http://e/p> "x"^^bad .`,       // bad datatype
		`_x <http://e/p> <http://e/o> .`,             // malformed blank
		`<http://e/s> <http://e/p> "bad\qescape" .`,  // unknown escape
		`<http://e/s> <http://e/p> .`,                // missing object
		`?v <http://e/p> <http://e/o> .`,             // variable not allowed
	}
	for _, line := range bad {
		if _, err := ParseNTriplesLine(line); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	ts := testTriples()
	ts = append(ts, Triple{NewBlank("b0"), iri("note"), NewLangLiteral("héllo \"quoted\"\n", "en-GB")})
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, ts); err != nil {
		t.Fatal(err)
	}
	back, err := ParseNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ts) {
		t.Fatalf("round trip length %d, want %d", len(back), len(ts))
	}
	for i := range ts {
		if back[i] != ts[i] {
			t.Errorf("round trip mismatch at %d: %v != %v", i, back[i], ts[i])
		}
	}
}

// Property: any literal value round-trips through serialization.
func TestNTriplesLiteralRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		// N-Triples is a line-oriented format; the escaper handles \n \r \t,
		// but other control characters are passed through and would break
		// framing, so constrain the property to printable + escaped space.
		for _, r := range s {
			if r < 0x20 && r != '\n' && r != '\r' && r != '\t' {
				return true // vacuous
			}
		}
		tr := Triple{NewIRI("http://e/s"), NewIRI("http://e/p"), NewLiteral(s)}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, []Triple{tr}); err != nil {
			return false
		}
		back, err := ParseNTriples(&buf)
		if err != nil || len(back) != 1 {
			return false
		}
		return back[0] == tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
