package rdf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func iri(s string) Term { return NewIRI("http://example.org/" + s) }

func testTriples() []Triple {
	return []Triple{
		{iri("alice"), iri("knows"), iri("bob")},
		{iri("alice"), iri("knows"), iri("carol")},
		{iri("alice"), iri("name"), NewLiteral("Alice")},
		{iri("bob"), iri("knows"), iri("carol")},
		{iri("bob"), iri("name"), NewLiteral("Bob")},
		{iri("carol"), iri("age"), NewInteger(30)},
	}
}

func TestGraphAddHasRemove(t *testing.T) {
	g := NewGraph()
	ts := testTriples()
	for _, tr := range ts {
		if !g.Add(tr) {
			t.Errorf("Add(%v) returned false on first insert", tr)
		}
	}
	if g.Size() != len(ts) {
		t.Fatalf("Size = %d, want %d", g.Size(), len(ts))
	}
	// duplicate insert
	if g.Add(ts[0]) {
		t.Error("duplicate Add returned true")
	}
	if g.Size() != len(ts) {
		t.Error("duplicate Add changed size")
	}
	for _, tr := range ts {
		if !g.Has(tr) {
			t.Errorf("Has(%v) = false", tr)
		}
	}
	if g.Has(Triple{iri("nobody"), iri("knows"), iri("alice")}) {
		t.Error("Has reported absent triple")
	}
	if !g.Remove(ts[0]) {
		t.Error("Remove existing returned false")
	}
	if g.Remove(ts[0]) {
		t.Error("Remove absent returned true")
	}
	if g.Has(ts[0]) {
		t.Error("removed triple still present")
	}
	if g.Size() != len(ts)-1 {
		t.Errorf("Size after remove = %d, want %d", g.Size(), len(ts)-1)
	}
}

func TestGraphRejectsPatterns(t *testing.T) {
	g := NewGraph()
	if g.Add(Triple{NewVar("x"), iri("p"), iri("o")}) {
		t.Error("Add accepted a pattern")
	}
	if g.Size() != 0 {
		t.Error("pattern insert changed size")
	}
}

func TestGraphMatchAllMasks(t *testing.T) {
	g := NewGraph()
	g.AddAll(testTriples())
	v := NewVar("v")
	w := NewVar("w")
	u := NewVar("u")
	cases := []struct {
		pat  Triple
		want int
	}{
		{Triple{iri("alice"), iri("knows"), iri("bob")}, 1},   // spo
		{Triple{iri("alice"), iri("knows"), v}, 2},            // sp
		{Triple{v, iri("knows"), iri("carol")}, 2},            // po
		{Triple{iri("alice"), v, NewLiteral("Alice")}, 1},     // so
		{Triple{iri("alice"), v, w}, 3},                       // s
		{Triple{v, iri("knows"), w}, 3},                       // p
		{Triple{v, w, iri("carol")}, 2},                       // o
		{Triple{u, v, w}, 6},                                  // none
		{Triple{iri("zed"), v, w}, 0},                         // absent subject
		{Triple{iri("alice"), iri("knows"), iri("alice")}, 0}, // absent triple
	}
	for _, c := range cases {
		got := g.Match(c.pat)
		if len(got) != c.want {
			t.Errorf("Match(%v) returned %d results, want %d", c.pat, len(got), c.want)
		}
		if n := g.CountMatch(c.pat); n != c.want {
			t.Errorf("CountMatch(%v) = %d, want %d", c.pat, n, c.want)
		}
		for _, m := range got {
			if !g.Has(m) {
				t.Errorf("Match returned triple not in graph: %v", m)
			}
		}
	}
}

func TestGraphForEachMatchEarlyStop(t *testing.T) {
	g := NewGraph()
	g.AddAll(testTriples())
	n := 0
	g.ForEachMatch(Triple{NewVar("s"), NewVar("p"), NewVar("o")}, func(Triple) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
}

func TestGraphTriplesSnapshot(t *testing.T) {
	g := NewGraph()
	ts := testTriples()
	g.AddAll(ts)
	snap := g.Triples()
	if len(snap) != len(ts) {
		t.Fatalf("Triples() length = %d, want %d", len(snap), len(ts))
	}
	seen := map[Triple]bool{}
	for _, tr := range snap {
		seen[tr] = true
	}
	for _, tr := range ts {
		if !seen[tr] {
			t.Errorf("snapshot missing %v", tr)
		}
	}
}

func TestGraphSubjectsPredicates(t *testing.T) {
	g := NewGraph()
	g.AddAll(testTriples())
	if got := len(g.Subjects()); got != 3 {
		t.Errorf("Subjects count = %d, want 3", got)
	}
	if got := len(g.Predicates()); got != 3 {
		t.Errorf("Predicates count = %d, want 3", got)
	}
}

func TestGraphClone(t *testing.T) {
	g := NewGraph()
	g.AddAll(testTriples())
	c := g.Clone()
	if c.Size() != g.Size() {
		t.Fatal("clone size mismatch")
	}
	c.Add(Triple{iri("dave"), iri("name"), NewLiteral("Dave")})
	if g.Size() == c.Size() {
		t.Error("mutating clone affected original")
	}
}

func TestGraphConcurrentAccess(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := Triple{iri(fmt.Sprintf("s%d", w)), iri("p"), NewInteger(int64(i))}
				g.Add(tr)
				g.Has(tr)
				g.Match(Triple{NewVar("s"), iri("p"), NewVar("o")})
			}
		}(w)
	}
	wg.Wait()
	if g.Size() != 8*200 {
		t.Errorf("Size = %d, want %d", g.Size(), 8*200)
	}
}

// Property: for any set of concrete triples, every triple added is matched
// by the fully-variable pattern exactly once, and removal is exact inverse.
func TestGraphAddRemoveInverseProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		var ts []Triple
		for i := 0; i < int(n%32)+1; i++ {
			tr := Triple{
				iri(fmt.Sprintf("s%d", rng.Intn(8))),
				iri(fmt.Sprintf("p%d", rng.Intn(4))),
				NewInteger(int64(rng.Intn(16))),
			}
			ts = append(ts, tr)
		}
		added := 0
		for _, tr := range ts {
			if g.Add(tr) {
				added++
			}
		}
		if g.Size() != added {
			return false
		}
		if g.CountMatch(Triple{NewVar("s"), NewVar("p"), NewVar("o")}) != added {
			return false
		}
		for _, tr := range ts {
			g.Remove(tr)
		}
		return g.Size() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: index consistency — Match by any mask agrees with a filter over
// the full snapshot.
func TestGraphIndexConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		for i := 0; i < 60; i++ {
			g.Add(Triple{
				iri(fmt.Sprintf("s%d", rng.Intn(6))),
				iri(fmt.Sprintf("p%d", rng.Intn(3))),
				iri(fmt.Sprintf("o%d", rng.Intn(6))),
			})
		}
		all := g.Triples()
		pats := []Triple{
			{iri("s1"), iri("p1"), NewVar("o")},
			{NewVar("s"), iri("p2"), iri("o3")},
			{iri("s0"), NewVar("p"), iri("o0")},
			{iri("s2"), NewVar("p"), NewVar("o")},
			{NewVar("s"), iri("p0"), NewVar("o")},
			{NewVar("s"), NewVar("p"), iri("o5")},
		}
		for _, pat := range pats {
			want := 0
			for _, tr := range all {
				if matches(pat, tr) {
					want++
				}
			}
			if g.CountMatch(pat) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func matches(pat, tr Triple) bool {
	ok := func(p, v Term) bool { return p.IsVar() || p == v }
	return ok(pat.S, tr.S) && ok(pat.P, tr.P) && ok(pat.O, tr.O)
}

func TestSortTriplesDeterministic(t *testing.T) {
	ts := testTriples()
	rand.New(rand.NewSource(1)).Shuffle(len(ts), func(i, j int) { ts[i], ts[j] = ts[j], ts[i] })
	SortTriples(ts)
	for i := 1; i < len(ts); i++ {
		if Compare(ts[i-1].S, ts[i].S) > 0 {
			t.Fatalf("not sorted at %d: %v > %v", i, ts[i-1], ts[i])
		}
	}
}
