package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Triple is one RDF statement. When used as a triple pattern, any of the
// three positions may be a variable (KindVar).
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from its components.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (without the trailing dot
// when any component is a variable, in which case it is a pattern).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// IsConcrete reports whether all three positions are concrete terms, i.e.
// the triple can be stored in a graph.
func (t Triple) IsConcrete() bool {
	return t.S.IsConcrete() && t.P.IsConcrete() && t.O.IsConcrete()
}

// IsPattern reports whether at least one position is a variable.
func (t Triple) IsPattern() bool {
	return t.S.IsVar() || t.P.IsVar() || t.O.IsVar()
}

// Vars returns the distinct variable names occurring in the pattern, in
// subject, predicate, object order.
func (t Triple) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, term := range []Term{t.S, t.P, t.O} {
		if term.IsVar() && !seen[term.Value] {
			seen[term.Value] = true
			out = append(out, term.Value)
		}
	}
	return out
}

// BoundMask describes which positions of a triple pattern are concrete.
// It is the basis for choosing one of the six distributed index keys
// (Sect. III-B of the paper).
type BoundMask uint8

// Bound-position flags. They combine with bitwise OR.
const (
	BoundS BoundMask = 1 << iota
	BoundP
	BoundO
)

// Mask returns the BoundMask of the pattern.
func (t Triple) Mask() BoundMask {
	var m BoundMask
	if t.S.IsConcrete() {
		m |= BoundS
	}
	if t.P.IsConcrete() {
		m |= BoundP
	}
	if t.O.IsConcrete() {
		m |= BoundO
	}
	return m
}

// String names the mask, e.g. "sp" for subject+predicate bound.
func (m BoundMask) String() string {
	var sb strings.Builder
	if m&BoundS != 0 {
		sb.WriteByte('s')
	}
	if m&BoundP != 0 {
		sb.WriteByte('p')
	}
	if m&BoundO != 0 {
		sb.WriteByte('o')
	}
	if sb.Len() == 0 {
		return "none"
	}
	return sb.String()
}

// SizeBytes estimates the wire size of the triple for the cost model.
func (t Triple) SizeBytes() int {
	return t.S.SizeBytes() + t.P.SizeBytes() + t.O.SizeBytes()
}

// SortTriples orders a slice of triples deterministically (by subject,
// predicate, object using Compare). It is used by tests and serializers.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		if c := Compare(ts[i].S, ts[j].S); c != 0 {
			return c < 0
		}
		if c := Compare(ts[i].P, ts[j].P); c != 0 {
			return c < 0
		}
		return Compare(ts[i].O, ts[j].O) < 0
	})
}
