package rdf

import (
	"strings"
	"testing"
)

func mustTurtle(t *testing.T, src string) []Triple {
	t.Helper()
	ts, err := ParseTurtleString(src)
	if err != nil {
		t.Fatalf("turtle parse: %v\n%s", err, src)
	}
	return ts
}

func TestTurtleBasics(t *testing.T) {
	ts := mustTurtle(t, `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex: <http://example.org/> .

ex:alice foaf:name "Alice" .
ex:alice foaf:knows ex:bob .
`)
	if len(ts) != 2 {
		t.Fatalf("parsed %d triples, want 2", len(ts))
	}
	if ts[0].S != NewIRI("http://example.org/alice") {
		t.Errorf("subject = %v", ts[0].S)
	}
	if ts[0].O != NewLiteral("Alice") {
		t.Errorf("object = %v", ts[0].O)
	}
}

func TestTurtlePredicateAndObjectLists(t *testing.T) {
	ts := mustTurtle(t, `
@prefix ex: <http://example.org/> .
ex:a ex:p ex:x, ex:y ;
     ex:q "v" ;
     a ex:Thing .
`)
	if len(ts) != 4 {
		t.Fatalf("parsed %d triples, want 4", len(ts))
	}
	for _, tr := range ts {
		if tr.S != NewIRI("http://example.org/a") {
			t.Errorf("shared subject broken: %v", tr)
		}
	}
	if ts[3].P != NewIRI(RDFType) {
		t.Errorf("'a' keyword: %v", ts[3].P)
	}
}

func TestTurtleLiteralForms(t *testing.T) {
	ts := mustTurtle(t, `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:int 42 ;
     ex:neg -7 ;
     ex:dec 3.14 ;
     ex:dbl 6.02e23 ;
     ex:t true ;
     ex:f false ;
     ex:lang "bonjour"@fr ;
     ex:typed "5"^^xsd:integer ;
     ex:typed2 "x"^^<http://example.org/dt> ;
     ex:sq 'single quoted' ;
     ex:long """line1
line2""" .
`)
	want := map[string]Term{
		"int":    NewTypedLiteral("42", XSDInteger),
		"neg":    NewTypedLiteral("-7", XSDInteger),
		"dec":    NewTypedLiteral("3.14", XSDDecimal),
		"dbl":    NewTypedLiteral("6.02e23", XSDDouble),
		"t":      NewBoolean(true),
		"f":      NewBoolean(false),
		"lang":   NewLangLiteral("bonjour", "fr"),
		"typed":  NewTypedLiteral("5", XSDInteger),
		"typed2": NewTypedLiteral("x", "http://example.org/dt"),
		"sq":     NewLiteral("single quoted"),
		"long":   NewLiteral("line1\nline2"),
	}
	got := map[string]Term{}
	for _, tr := range ts {
		got[strings.TrimPrefix(tr.P.Value, "http://example.org/")] = tr.O
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %v, want %v", k, got[k], w)
		}
	}
}

func TestTurtleBlankNodes(t *testing.T) {
	ts := mustTurtle(t, `
@prefix ex: <http://example.org/> .
_:b1 ex:p ex:o .
ex:s ex:q _:b1 .
ex:s ex:r [ ex:inner "v" ; ex:inner2 ex:z ] .
ex:s ex:empty [] .
`)
	if len(ts) != 6 {
		t.Fatalf("parsed %d triples, want 6", len(ts))
	}
	if ts[0].S != NewBlank("b1") || ts[1].O != NewBlank("b1") {
		t.Error("labelled blank nodes broken")
	}
	// the [ ... ] node appears as object of ex:r and subject of ex:inner*
	var propListNode Term
	for _, tr := range ts {
		if tr.P == NewIRI("http://example.org/r") {
			propListNode = tr.O
		}
	}
	if propListNode.Kind != KindBlank {
		t.Fatalf("property-list object = %v", propListNode)
	}
	inner := 0
	for _, tr := range ts {
		if tr.S == propListNode {
			inner++
		}
	}
	if inner != 2 {
		t.Errorf("inner triples of [ ] = %d, want 2", inner)
	}
}

func TestTurtleBaseAndSPARQLDirectives(t *testing.T) {
	ts := mustTurtle(t, `
BASE <http://example.org/>
PREFIX ex: <http://example.org/ns#>
<alice> ex:knows <bob> .
`)
	if len(ts) != 1 {
		t.Fatalf("parsed %d triples", len(ts))
	}
	if ts[0].S != NewIRI("http://example.org/alice") {
		t.Errorf("base resolution: %v", ts[0].S)
	}
	if ts[0].P != NewIRI("http://example.org/ns#knows") {
		t.Errorf("SPARQL prefix: %v", ts[0].P)
	}
}

func TestTurtleComments(t *testing.T) {
	ts := mustTurtle(t, `
# leading comment
@prefix ex: <http://example.org/> . # trailing
ex:a ex:p ex:b . # another
`)
	if len(ts) != 1 {
		t.Fatalf("parsed %d triples", len(ts))
	}
}

func TestTurtleEscapes(t *testing.T) {
	ts := mustTurtle(t, `
@prefix ex: <http://example.org/> .
ex:a ex:p "tab\there é \U0001F600 \"q\"" .
`)
	if ts[0].O.Value != "tab\there é 😀 \"q\"" {
		t.Errorf("escapes = %q", ts[0].O.Value)
	}
}

func TestTurtleErrors(t *testing.T) {
	bad := map[string]string{
		"undeclared prefix": `ex:a ex:p ex:b .`,
		"missing dot":       `@prefix ex: <http://e/> . ex:a ex:p ex:b`,
		"unterminated str":  `@prefix ex: <http://e/> . ex:a ex:p "x .`,
		"unterminated iri":  `@prefix ex: <http://e/> . ex:a ex:p <http://x .`,
		"bad directive":     `@prefix ex <http://e/> .`,
		"unterminated [":    `@prefix ex: <http://e/> . ex:a ex:p [ ex:q "v" .`,
		"newline in string": "@prefix ex: <http://e/> . ex:a ex:p \"x\ny\" .",
		"bad escape":        `@prefix ex: <http://e/> . ex:a ex:p "\q" .`,
	}
	for name, src := range bad {
		if _, err := ParseTurtleString(src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestTurtleAcceptsNTriples(t *testing.T) {
	// every N-Triples document is valid Turtle
	var sb strings.Builder
	if err := WriteNTriples(&sb, testTriples()); err != nil {
		t.Fatal(err)
	}
	ts, err := ParseTurtleString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(testTriples()) {
		t.Errorf("parsed %d, want %d", len(ts), len(testTriples()))
	}
}

func TestTurtleNumericTerminatorAmbiguity(t *testing.T) {
	// "5." must parse as integer 5 followed by the statement terminator
	ts := mustTurtle(t, `@prefix ex: <http://e/> . ex:a ex:p 5.`)
	if len(ts) != 1 || ts[0].O != NewTypedLiteral("5", XSDInteger) {
		t.Errorf("got %v", ts)
	}
	ts = mustTurtle(t, `@prefix ex: <http://e/> . ex:a ex:p 5.5 .`)
	if len(ts) != 1 || ts[0].O != NewTypedLiteral("5.5", XSDDecimal) {
		t.Errorf("got %v", ts)
	}
}

func TestTurtleIntoGraph(t *testing.T) {
	ts := mustTurtle(t, `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex: <http://example.org/> .
ex:alice foaf:knows ex:bob, ex:carol ;
         foaf:name "Alice" .
ex:bob foaf:knows ex:carol .
`)
	g := NewGraph()
	g.AddAll(ts)
	n := g.CountMatch(Triple{NewVar("s"), NewIRI("http://xmlns.com/foaf/0.1/knows"), NewVar("o")})
	if n != 3 {
		t.Errorf("knows edges = %d, want 3", n)
	}
}
