package rdf

import "adhocshare/internal/wirebin"

// Binary wire form of terms and triples, shared by every hand-rolled
// payload codec (see internal/dqp). The encoding is positional and
// deterministic: kind tag, then the three lexical components as
// length-prefixed strings.

// EncodeBinary appends the term's binary wire form to dst.
func (t Term) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(t.Kind))
	dst = wirebin.AppendString(dst, t.Value)
	dst = wirebin.AppendString(dst, t.Lang)
	return wirebin.AppendString(dst, t.Datatype)
}

// DecodeBinary consumes one term from b and returns the rest.
func (t *Term) DecodeBinary(b []byte) ([]byte, error) {
	kind, b, err := wirebin.Uvarint(b)
	if err != nil {
		return b, err
	}
	t.Kind = Kind(kind)
	if t.Value, b, err = wirebin.String(b); err != nil {
		return b, err
	}
	if t.Lang, b, err = wirebin.String(b); err != nil {
		return b, err
	}
	t.Datatype, b, err = wirebin.String(b)
	return b, err
}

// EncodeBinary appends the triple's binary wire form to dst.
func (t Triple) EncodeBinary(dst []byte) []byte {
	dst = t.S.EncodeBinary(dst)
	dst = t.P.EncodeBinary(dst)
	return t.O.EncodeBinary(dst)
}

// DecodeBinary consumes one triple from b and returns the rest.
func (t *Triple) DecodeBinary(b []byte) ([]byte, error) {
	b, err := t.S.DecodeBinary(b)
	if err != nil {
		return b, err
	}
	if b, err = t.P.DecodeBinary(b); err != nil {
		return b, err
	}
	return t.O.DecodeBinary(b)
}

// AppendTriples appends a length-prefixed triple sequence.
func AppendTriples(dst []byte, ts []Triple) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(len(ts)))
	for _, t := range ts {
		dst = t.EncodeBinary(dst)
	}
	return dst
}

// DecodeTriples consumes a length-prefixed triple sequence (nil for an
// empty one, matching what gob's zero-value elision decodes to).
func DecodeTriples(b []byte) ([]Triple, []byte, error) {
	n, b, err := wirebin.Len(b)
	if err != nil || n == 0 {
		return nil, b, err
	}
	out := make([]Triple, n)
	for i := range out {
		if b, err = out[i].DecodeBinary(b); err != nil {
			return nil, b, err
		}
	}
	return out, b, nil
}
