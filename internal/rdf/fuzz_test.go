package rdf

import (
	"bytes"
	"strings"
	"testing"
)

// ntSerializable reports whether every term in ts survives the N-Triples
// writer's framing. The writer escapes quotes, backslashes and \n \r \t in
// literal lexical forms, but IRIs, blank-node labels and language tags are
// written verbatim, so terms Turtle can express beyond the N-Triples
// grammar (an IRI containing '>', a label with punctuation) are excluded
// from the round-trip property rather than counted as writer bugs.
func ntSerializable(ts []Triple) bool {
	iriOK := func(v string) bool { return !strings.ContainsAny(v, ">\n\r") }
	labelOK := func(v string) bool {
		for _, r := range v {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_') {
				return false
			}
		}
		return v != ""
	}
	for _, tr := range ts {
		for _, term := range []Term{tr.S, tr.P, tr.O} {
			switch term.Kind {
			case KindIRI:
				if !iriOK(term.Value) {
					return false
				}
			case KindBlank:
				if !labelOK(term.Value) {
					return false
				}
			case KindLiteral:
				if !iriOK(term.Datatype) || !labelOK(term.Lang) && term.Lang != "" {
					return false
				}
			}
		}
	}
	return true
}

// FuzzReadTurtle checks the Turtle reader never panics, and that every
// document it accepts re-serializes cleanly: the parsed triples write out
// as N-Triples, parse back with the same count, and re-serialize to
// byte-identical text.
func FuzzReadTurtle(f *testing.F) {
	f.Add("<http://e/s> <http://e/p> <http://e/o> .")
	f.Add(`@prefix f: <http://f/> . f:a f:b f:c , "lit"@en ; f:d 4.5 .`)
	f.Add(`@base <http://b/> . <s> a <o> . <s2> <p> true .`)
	f.Add(`PREFIX f: <http://f/>
f:s f:p [ f:q "x\n\"y\"" ; f:r -7 ] .`)
	f.Add(`# comment
<http://e/s> <http://e/p> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .`)
	f.Add(`_:b1 <http://e/p> _:b2 .`)
	f.Fuzz(func(t *testing.T, src string) {
		ts, err := ParseTurtleString(src)
		if err != nil || !ntSerializable(ts) {
			return
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, ts); err != nil {
			t.Fatalf("write: %v\ninput: %q", err, src)
		}
		first := buf.String()
		back, err := ParseNTriples(strings.NewReader(first))
		if err != nil {
			t.Fatalf("serialized triples do not reparse: %v\ninput: %q\nserialized:\n%s", err, src, first)
		}
		if len(back) != len(ts) {
			t.Fatalf("triple count changed across serialization: %d -> %d\ninput: %q", len(ts), len(back), src)
		}
		buf.Reset()
		if err := WriteNTriples(&buf, back); err != nil {
			t.Fatalf("re-write: %v", err)
		}
		if buf.String() != first {
			t.Fatalf("serialization is not a fixed point\nfirst:\n%s\nsecond:\n%s", first, buf.String())
		}
	})
}
