package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	cases := []struct {
		term Term
		kind Kind
		str  string
	}{
		{NewIRI("http://example.org/a"), KindIRI, "<http://example.org/a>"},
		{NewLiteral("hello"), KindLiteral, `"hello"`},
		{NewLangLiteral("bonjour", "fr"), KindLiteral, `"bonjour"@fr`},
		{NewTypedLiteral("5", XSDInteger), KindLiteral, `"5"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewBlank("b1"), KindBlank, "_:b1"},
		{NewVar("x"), KindVar, "?x"},
		{NewInteger(-7), KindLiteral, `"-7"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewBoolean(true), KindLiteral, `"true"^^<http://www.w3.org/2001/XMLSchema#boolean>`},
	}
	for _, c := range cases {
		if c.term.Kind != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.term, c.term.Kind, c.kind)
		}
		if got := c.term.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestTermPredicates(t *testing.T) {
	if !NewVar("x").IsVar() {
		t.Error("NewVar should be a var")
	}
	if NewIRI("a").IsVar() {
		t.Error("IRI should not be a var")
	}
	if !NewIRI("a").IsConcrete() || !NewLiteral("l").IsConcrete() || !NewBlank("b").IsConcrete() {
		t.Error("IRI/literal/blank should be concrete")
	}
	if NewVar("x").IsConcrete() {
		t.Error("var should not be concrete")
	}
	var zero Term
	if !zero.IsZero() {
		t.Error("zero term should report IsZero")
	}
	if NewIRI("a").IsZero() {
		t.Error("IRI should not be zero")
	}
}

func TestTermEquality(t *testing.T) {
	a1 := NewIRI("http://x")
	a2 := NewIRI("http://x")
	if a1 != a2 || !a1.Equal(a2) {
		t.Error("identical IRIs must compare equal")
	}
	if NewLiteral("x") == NewLangLiteral("x", "en") {
		t.Error("plain and lang literal must differ")
	}
	if NewLiteral("5") == NewTypedLiteral("5", XSDInteger) {
		t.Error("plain and typed literal must differ")
	}
	if NewIRI("x") == NewBlank("x") {
		t.Error("IRI and blank with same value must differ")
	}
}

func TestLiteralEscaping(t *testing.T) {
	l := NewLiteral("a\"b\\c\nd\te\rf")
	want := `"a\"b\\c\nd\te\rf"`
	if got := l.String(); got != want {
		t.Errorf("escaped literal = %q, want %q", got, want)
	}
}

func TestCompareOrdering(t *testing.T) {
	// blank < IRI < literal
	b, i, l := NewBlank("z"), NewIRI("a"), NewLiteral("a")
	if Compare(b, i) >= 0 || Compare(i, l) >= 0 || Compare(b, l) >= 0 {
		t.Error("rank order blank < IRI < literal violated")
	}
	// numeric comparison across integer lexical forms
	if Compare(NewInteger(9), NewInteger(10)) >= 0 {
		t.Error("numeric compare: 9 should sort before 10")
	}
	if Compare(NewTypedLiteral("2.5", XSDDecimal), NewInteger(3)) >= 0 {
		t.Error("numeric compare across datatypes failed")
	}
	// lexical fallback
	if Compare(NewLiteral("apple"), NewLiteral("banana")) >= 0 {
		t.Error("lexical compare failed")
	}
	if Compare(NewLiteral("x"), NewLiteral("x")) != 0 {
		t.Error("equal literals must compare 0")
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(av, bv string, ak, bk uint8) bool {
		a := Term{Kind: Kind(ak%4) + 1, Value: av}
		b := Term{Kind: Kind(bk%4) + 1, Value: bv}
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumericValue(t *testing.T) {
	cases := []struct {
		term Term
		want float64
		ok   bool
	}{
		{NewInteger(42), 42, true},
		{NewTypedLiteral("-3.5", XSDDecimal), -3.5, true},
		{NewTypedLiteral("1e3", XSDDouble), 1000, true},
		{NewLiteral("17"), 17, true},
		{NewLiteral("abc"), 0, false},
		{NewLiteral("12abc"), 0, false},
		{NewLiteral(""), 0, false},
		{NewIRI("http://x"), 0, false},
	}
	for _, c := range cases {
		got, ok := NumericValue(c.term)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("NumericValue(%v) = %v,%v want %v,%v", c.term, got, ok, c.want, c.ok)
		}
	}
}

func TestBoundMask(t *testing.T) {
	s, p, o := NewIRI("s"), NewIRI("p"), NewLiteral("o")
	v := NewVar("x")
	cases := []struct {
		tr   Triple
		mask BoundMask
		name string
	}{
		{Triple{s, p, o}, BoundS | BoundP | BoundO, "spo"},
		{Triple{s, p, v}, BoundS | BoundP, "sp"},
		{Triple{v, p, o}, BoundP | BoundO, "po"},
		{Triple{s, v, o}, BoundS | BoundO, "so"},
		{Triple{s, v, v}, BoundS, "s"},
		{Triple{v, p, v}, BoundP, "p"},
		{Triple{v, v, o}, BoundO, "o"},
		{Triple{v, v, v}, 0, "none"},
	}
	for _, c := range cases {
		if got := c.tr.Mask(); got != c.mask {
			t.Errorf("Mask(%v) = %v, want %v", c.tr, got, c.mask)
		}
		if got := c.tr.Mask().String(); got != c.name {
			t.Errorf("Mask.String = %q, want %q", got, c.name)
		}
	}
}

func TestTripleVars(t *testing.T) {
	tr := Triple{NewVar("x"), NewIRI("p"), NewVar("x")}
	vars := tr.Vars()
	if len(vars) != 1 || vars[0] != "x" {
		t.Errorf("Vars() = %v, want [x]", vars)
	}
	tr2 := Triple{NewVar("a"), NewVar("b"), NewVar("c")}
	if got := tr2.Vars(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Vars() = %v, want [a b c]", got)
	}
}

func TestTriplePredicates(t *testing.T) {
	conc := Triple{NewIRI("s"), NewIRI("p"), NewLiteral("o")}
	if !conc.IsConcrete() || conc.IsPattern() {
		t.Error("concrete triple misclassified")
	}
	pat := Triple{NewVar("s"), NewIRI("p"), NewLiteral("o")}
	if pat.IsConcrete() || !pat.IsPattern() {
		t.Error("pattern misclassified")
	}
}

func TestSizeBytesPositive(t *testing.T) {
	f := func(v string) bool {
		return NewIRI(v).SizeBytes() > 0 && NewLiteral(v).SizeBytes() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
