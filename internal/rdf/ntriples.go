package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseNTriples reads N-Triples from r. Lines that are empty or start with
// '#' are skipped. Each statement must end with '.'.
func ParseNTriples(r io.Reader) ([]Triple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Triple
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseNTriplesLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: read: %w", err)
	}
	return out, nil
}

// ParseNTriplesLine parses a single N-Triples statement.
func ParseNTriplesLine(line string) (Triple, error) {
	p := &ntParser{in: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.ws()
	if !p.eat('.') {
		return Triple{}, fmt.Errorf("missing terminating '.' at offset %d", p.pos)
	}
	p.ws()
	if p.pos != len(p.in) {
		return Triple{}, fmt.Errorf("trailing content after '.'")
	}
	return Triple{s, pr, o}, nil
}

type ntParser struct {
	in  string
	pos int
}

func (p *ntParser) ws() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) eat(c byte) bool {
	if p.pos < len(p.in) && p.in[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *ntParser) term() (Term, error) {
	p.ws()
	if p.pos >= len(p.in) {
		return Term{}, fmt.Errorf("unexpected end of statement")
	}
	switch p.in[p.pos] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Term{}, fmt.Errorf("unexpected character %q at offset %d", p.in[p.pos], p.pos)
	}
}

func (p *ntParser) iri() (Term, error) {
	p.pos++ // consume '<'
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != '>' {
		p.pos++
	}
	if p.pos >= len(p.in) {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	v := p.in[start:p.pos]
	p.pos++ // consume '>'
	return NewIRI(v), nil
}

func (p *ntParser) blank() (Term, error) {
	if p.pos+1 >= len(p.in) || p.in[p.pos+1] != ':' {
		return Term{}, fmt.Errorf("malformed blank node at offset %d", p.pos)
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.in) && !isNTWhitespace(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	return NewBlank(p.in[start:p.pos]), nil
}

func (p *ntParser) literal() (Term, error) {
	p.pos++ // consume opening '"'
	var sb strings.Builder
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '"' {
			break
		}
		if c == '\\' {
			p.pos++
			if p.pos >= len(p.in) {
				return Term{}, fmt.Errorf("dangling escape in literal")
			}
			switch e := p.in[p.pos]; e {
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			case 'u', 'U':
				width := 4
				if e == 'U' {
					width = 8
				}
				if p.pos+width >= len(p.in) {
					return Term{}, fmt.Errorf("truncated \\%c escape", e)
				}
				var r rune
				if _, err := fmt.Sscanf(p.in[p.pos+1:p.pos+1+width], "%x", &r); err != nil {
					return Term{}, fmt.Errorf("bad \\%c escape: %v", e, err)
				}
				sb.WriteRune(r)
				p.pos += width
			default:
				return Term{}, fmt.Errorf("unknown escape \\%c", e)
			}
			p.pos++
			continue
		}
		sb.WriteByte(c)
		p.pos++
	}
	if p.pos >= len(p.in) {
		return Term{}, fmt.Errorf("unterminated literal")
	}
	p.pos++ // consume closing '"'
	lex := sb.String()
	// Optional language tag or datatype.
	if p.pos < len(p.in) && p.in[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.in) && !isNTWhitespace(p.in[p.pos]) && p.in[p.pos] != '.' {
			p.pos++
		}
		return NewLangLiteral(lex, p.in[start:p.pos]), nil
	}
	if strings.HasPrefix(p.in[p.pos:], "^^") {
		p.pos += 2
		if p.pos >= len(p.in) || p.in[p.pos] != '<' {
			return Term{}, fmt.Errorf("expected datatype IRI after ^^")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func isNTWhitespace(c byte) bool { return c == ' ' || c == '\t' }

// WriteNTriples serializes triples to w, one statement per line, in the
// given order.
func WriteNTriples(w io.Writer, ts []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if _, err := fmt.Fprintln(bw, t.String()); err != nil {
			return fmt.Errorf("rdf: write: %w", err)
		}
	}
	return bw.Flush()
}
