package rdf

import "sync"

// Graph is an in-memory RDF triple store with three complete indexes
// (SPO, POS, OSP) so that any triple pattern can be matched by scanning the
// smallest applicable index slice. It is safe for concurrent use.
//
// Storage nodes in the overlay each own one Graph — the paper's premise is
// that providers keep and serve their own data locally (Sect. I, III).
type Graph struct {
	mu   sync.RWMutex
	spo  index3
	pos  index3
	osp  index3
	size int
}

type index3 map[Term]map[Term]map[Term]struct{}

func (ix index3) add(a, b, c Term) bool {
	m1, ok := ix[a]
	if !ok {
		m1 = make(map[Term]map[Term]struct{})
		ix[a] = m1
	}
	m2, ok := m1[b]
	if !ok {
		m2 = make(map[Term]struct{})
		m1[b] = m2
	}
	if _, dup := m2[c]; dup {
		return false
	}
	m2[c] = struct{}{}
	return true
}

func (ix index3) remove(a, b, c Term) bool {
	m1, ok := ix[a]
	if !ok {
		return false
	}
	m2, ok := m1[b]
	if !ok {
		return false
	}
	if _, ok := m2[c]; !ok {
		return false
	}
	delete(m2, c)
	if len(m2) == 0 {
		delete(m1, b)
		if len(m1) == 0 {
			delete(ix, a)
		}
	}
	return true
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo: make(index3),
		pos: make(index3),
		osp: make(index3),
	}
}

// Add inserts a concrete triple. It reports whether the triple was new.
// Adding a non-concrete triple (a pattern) is a no-op returning false.
func (g *Graph) Add(t Triple) bool {
	if !t.IsConcrete() {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.spo.add(t.S, t.P, t.O) {
		return false
	}
	g.pos.add(t.P, t.O, t.S)
	g.osp.add(t.O, t.S, t.P)
	g.size++
	return true
}

// AddAll inserts every triple of ts, returning the number actually added.
func (g *Graph) AddAll(ts []Triple) int {
	n := 0
	for _, t := range ts {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Remove deletes a triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.spo.remove(t.S, t.P, t.O) {
		return false
	}
	g.pos.remove(t.P, t.O, t.S)
	g.osp.remove(t.O, t.S, t.P)
	g.size--
	return true
}

// Has reports whether the concrete triple is stored.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if m1, ok := g.spo[t.S]; ok {
		if m2, ok := m1[t.P]; ok {
			_, ok := m2[t.O]
			return ok
		}
	}
	return false
}

// Size returns the number of stored triples.
func (g *Graph) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.size
}

// Triples returns a snapshot of all stored triples in unspecified order.
func (g *Graph) Triples() []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Triple, 0, g.size)
	for s, m1 := range g.spo {
		for p, m2 := range m1 {
			for o := range m2 {
				out = append(out, Triple{s, p, o})
			}
		}
	}
	return out
}

// Match returns all stored triples matching the pattern. Variable positions
// match anything; concrete positions must be equal. The best index for the
// pattern's bound mask is consulted so the scan touches only candidates.
func (g *Graph) Match(pat Triple) []Triple {
	var out []Triple
	g.ForEachMatch(pat, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// CountMatch returns the number of stored triples matching the pattern
// without materializing them. It backs the location-table frequency counts.
func (g *Graph) CountMatch(pat Triple) int {
	n := 0
	g.ForEachMatch(pat, func(Triple) bool {
		n++
		return true
	})
	return n
}

// ForEachMatch streams matches to fn; fn returns false to stop early.
func (g *Graph) ForEachMatch(pat Triple, fn func(Triple) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	sB, pB, oB := pat.S.IsConcrete(), pat.P.IsConcrete(), pat.O.IsConcrete()
	switch {
	case sB && pB && oB:
		if m1, ok := g.spo[pat.S]; ok {
			if m2, ok := m1[pat.P]; ok {
				if _, ok := m2[pat.O]; ok {
					fn(pat)
				}
			}
		}
	case sB && pB:
		if m1, ok := g.spo[pat.S]; ok {
			for o := range m1[pat.P] {
				if !fn(Triple{pat.S, pat.P, o}) {
					return
				}
			}
		}
	case pB && oB:
		if m1, ok := g.pos[pat.P]; ok {
			for s := range m1[pat.O] {
				if !fn(Triple{s, pat.P, pat.O}) {
					return
				}
			}
		}
	case sB && oB:
		if m1, ok := g.osp[pat.O]; ok {
			for p := range m1[pat.S] {
				if !fn(Triple{pat.S, p, pat.O}) {
					return
				}
			}
		}
	case sB:
		if m1, ok := g.spo[pat.S]; ok {
			for p, m2 := range m1 {
				for o := range m2 {
					if !fn(Triple{pat.S, p, o}) {
						return
					}
				}
			}
		}
	case pB:
		if m1, ok := g.pos[pat.P]; ok {
			for o, m2 := range m1 {
				for s := range m2 {
					if !fn(Triple{s, pat.P, o}) {
						return
					}
				}
			}
		}
	case oB:
		if m1, ok := g.osp[pat.O]; ok {
			for s, m2 := range m1 {
				for p := range m2 {
					if !fn(Triple{s, p, pat.O}) {
						return
					}
				}
			}
		}
	default: // full scan
		for s, m1 := range g.spo {
			for p, m2 := range m1 {
				for o := range m2 {
					if !fn(Triple{s, p, o}) {
						return
					}
				}
			}
		}
	}
}

// Subjects returns the distinct subjects in the graph.
func (g *Graph) Subjects() []Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Term, 0, len(g.spo))
	for s := range g.spo {
		out = append(out, s)
	}
	return out
}

// Predicates returns the distinct predicates in the graph.
func (g *Graph) Predicates() []Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Term, 0, len(g.pos))
	for p := range g.pos {
		out = append(out, p)
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	out.AddAll(g.Triples())
	return out
}
