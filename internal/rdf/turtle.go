package rdf

import (
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ParseTurtle reads a Turtle document: @prefix/@base (and SPARQL-style
// PREFIX/BASE) directives, prefixed names, the 'a' keyword, predicate
// lists (';'), object lists (','), anonymous blank nodes with property
// lists ('[ ... ]'), and numeric/boolean literal shorthand. RDF
// collections '( ... )' are not supported.
func ParseTurtle(r io.Reader) ([]Triple, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("rdf: turtle read: %w", err)
	}
	p := &turtleParser{in: string(src), line: 1, prefixes: map[string]string{}}
	return p.parse()
}

// ParseTurtleString parses a Turtle document from a string.
func ParseTurtleString(src string) ([]Triple, error) {
	return ParseTurtle(strings.NewReader(src))
}

type turtleParser struct {
	in       string
	pos      int
	line     int
	prefixes map[string]string
	base     string
	out      []Triple
	blankSeq int
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("rdf: turtle line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *turtleParser) parse() ([]Triple, error) {
	for {
		p.skipWS()
		if p.pos >= len(p.in) {
			return p.out, nil
		}
		if err := p.statement(); err != nil {
			return nil, err
		}
	}
}

func (p *turtleParser) statement() error {
	switch {
	case p.hasKeyword("@prefix"):
		p.pos += len("@prefix")
		return p.prefixDirective(true)
	case p.hasKeyword("@base"):
		p.pos += len("@base")
		return p.baseDirective(true)
	case p.hasCaselessWord("PREFIX"):
		p.pos += len("PREFIX")
		return p.prefixDirective(false)
	case p.hasCaselessWord("BASE"):
		p.pos += len("BASE")
		return p.baseDirective(false)
	default:
		return p.triples()
	}
}

// hasKeyword matches a case-sensitive Turtle directive.
func (p *turtleParser) hasKeyword(kw string) bool {
	return strings.HasPrefix(p.in[p.pos:], kw)
}

// hasCaselessWord matches a SPARQL-style directive keyword followed by
// whitespace.
func (p *turtleParser) hasCaselessWord(kw string) bool {
	if len(p.in)-p.pos <= len(kw) {
		return false
	}
	if !strings.EqualFold(p.in[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	c := p.in[p.pos+len(kw)]
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func (p *turtleParser) prefixDirective(dotted bool) error {
	p.skipWS()
	name, err := p.pnameNS()
	if err != nil {
		return err
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = p.resolve(iri)
	if dotted {
		p.skipWS()
		if !p.eat('.') {
			return p.errf("@prefix directive must end with '.'")
		}
	}
	return nil
}

func (p *turtleParser) baseDirective(dotted bool) error {
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	if dotted {
		p.skipWS()
		if !p.eat('.') {
			return p.errf("@base directive must end with '.'")
		}
	}
	return nil
}

// triples parses subject predicateObjectList '.'.
func (p *turtleParser) triples() error {
	subj, err := p.subject()
	if err != nil {
		return err
	}
	if err := p.predicateObjectList(subj); err != nil {
		return err
	}
	p.skipWS()
	if !p.eat('.') {
		return p.errf("expected '.' after triples, found %q", p.peekRune())
	}
	return nil
}

func (p *turtleParser) predicateObjectList(subj Term) error {
	for {
		p.skipWS()
		pred, err := p.verb()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.object()
			if err != nil {
				return err
			}
			p.out = append(p.out, Triple{S: subj, P: pred, O: obj})
			p.skipWS()
			if p.eat(',') {
				continue
			}
			break
		}
		p.skipWS()
		if p.eat(';') {
			p.skipWS()
			// allow trailing ';' before '.' or ']'
			if c := p.peekByte(); c == '.' || c == ']' || c == 0 {
				return nil
			}
			continue
		}
		return nil
	}
}

func (p *turtleParser) subject() (Term, error) {
	p.skipWS()
	switch c := p.peekByte(); {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(p.resolve(iri)), nil
	case c == '_':
		return p.blankLabel()
	case c == '[':
		return p.blankPropertyList()
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) verb() (Term, error) {
	if p.peekByte() == 'a' {
		// 'a' keyword only when followed by whitespace or a term opener
		if p.pos+1 < len(p.in) {
			next := p.in[p.pos+1]
			if next == ' ' || next == '\t' || next == '\n' || next == '\r' || next == '<' || next == '[' || next == '"' {
				p.pos++
				return NewIRI(RDFType), nil
			}
		}
	}
	if p.peekByte() == '<' {
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(p.resolve(iri)), nil
	}
	return p.prefixedName()
}

func (p *turtleParser) object() (Term, error) {
	switch c := p.peekByte(); {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(p.resolve(iri)), nil
	case c == '_':
		return p.blankLabel()
	case c == '[':
		return p.blankPropertyList()
	case c == '"' || c == '\'':
		return p.literal()
	case c == '+' || c == '-' || c == '.' || (c >= '0' && c <= '9'):
		return p.numericLiteral()
	case p.hasBoolean():
		return p.booleanLiteral()
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) hasBoolean() bool {
	rest := p.in[p.pos:]
	for _, kw := range []string{"true", "false"} {
		if strings.HasPrefix(rest, kw) {
			if len(rest) == len(kw) || !isTurtleNameChar(rune(rest[len(kw)])) {
				return true
			}
		}
	}
	return false
}

func (p *turtleParser) booleanLiteral() (Term, error) {
	if strings.HasPrefix(p.in[p.pos:], "true") {
		p.pos += 4
		return NewBoolean(true), nil
	}
	p.pos += 5
	return NewBoolean(false), nil
}

// blankPropertyList parses '[' predicateObjectList? ']' and returns a
// fresh blank node.
func (p *turtleParser) blankPropertyList() (Term, error) {
	p.pos++ // '['
	p.blankSeq++
	node := NewBlank(fmt.Sprintf("genid%d", p.blankSeq))
	p.skipWS()
	if p.eat(']') {
		return node, nil
	}
	if err := p.predicateObjectList(node); err != nil {
		return Term{}, err
	}
	p.skipWS()
	if !p.eat(']') {
		return Term{}, p.errf("unterminated '[' property list")
	}
	return node, nil
}

func (p *turtleParser) blankLabel() (Term, error) {
	if p.pos+1 >= len(p.in) || p.in[p.pos+1] != ':' {
		return Term{}, p.errf("malformed blank node label")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.in) {
		r, sz := utf8.DecodeRuneInString(p.in[p.pos:])
		if !isTurtleNameChar(r) {
			break
		}
		p.pos += sz
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(p.in[start:p.pos]), nil
}

func (p *turtleParser) iriRef() (string, error) {
	if !p.eat('<') {
		return "", p.errf("expected IRI, found %q", p.peekRune())
	}
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != '>' {
		if p.in[p.pos] == '\n' {
			return "", p.errf("newline in IRI")
		}
		p.pos++
	}
	if p.pos >= len(p.in) {
		return "", p.errf("unterminated IRI")
	}
	v := p.in[start:p.pos]
	p.pos++ // '>'
	return v, nil
}

func (p *turtleParser) resolve(iri string) string {
	if p.base == "" || strings.Contains(iri, "://") || strings.HasPrefix(iri, "urn:") || strings.HasPrefix(iri, "mailto:") {
		return iri
	}
	return p.base + iri
}

// pnameNS parses "prefix:" (possibly empty prefix) for directives.
func (p *turtleParser) pnameNS() (string, error) {
	start := p.pos
	for p.pos < len(p.in) {
		r, sz := utf8.DecodeRuneInString(p.in[p.pos:])
		if r == ':' {
			name := p.in[start:p.pos]
			p.pos += sz
			return name, nil
		}
		if !isTurtleNameChar(r) {
			break
		}
		p.pos += sz
	}
	return "", p.errf("expected prefix declaration ending in ':'")
}

func (p *turtleParser) prefixedName() (Term, error) {
	start := p.pos
	colon := -1
	for p.pos < len(p.in) {
		r, sz := utf8.DecodeRuneInString(p.in[p.pos:])
		if r == ':' && colon == -1 {
			colon = p.pos
			p.pos += sz
			continue
		}
		if !isTurtleNameChar(r) {
			break
		}
		p.pos += sz
	}
	if colon == -1 {
		return Term{}, p.errf("expected term, found %q", p.peekRune())
	}
	prefix := p.in[start:colon]
	local := p.in[colon+1 : p.pos]
	ns, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("undeclared prefix %q", prefix)
	}
	return NewIRI(ns + local), nil
}

func (p *turtleParser) literal() (Term, error) {
	quote := p.in[p.pos]
	long := strings.HasPrefix(p.in[p.pos:], strings.Repeat(string(quote), 3))
	var lex string
	var err error
	if long {
		lex, err = p.longString(quote)
	} else {
		lex, err = p.shortString(quote)
	}
	if err != nil {
		return Term{}, err
	}
	// language tag or datatype
	if p.peekByte() == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.in) {
			c := p.in[p.pos]
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' {
				p.pos++
				continue
			}
			break
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return NewLangLiteral(lex, p.in[start:p.pos]), nil
	}
	if strings.HasPrefix(p.in[p.pos:], "^^") {
		p.pos += 2
		var dt Term
		if p.peekByte() == '<' {
			iri, err := p.iriRef()
			if err != nil {
				return Term{}, err
			}
			dt = NewIRI(p.resolve(iri))
		} else {
			dt, err = p.prefixedName()
			if err != nil {
				return Term{}, err
			}
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

func (p *turtleParser) shortString(quote byte) (string, error) {
	p.pos++ // opening quote
	var sb strings.Builder
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == quote {
			p.pos++
			return sb.String(), nil
		}
		if c == '\n' {
			return "", p.errf("newline in string literal")
		}
		if c == '\\' {
			r, err := p.escape()
			if err != nil {
				return "", err
			}
			sb.WriteRune(r)
			continue
		}
		sb.WriteByte(c)
		p.pos++
	}
	return "", p.errf("unterminated string literal")
}

func (p *turtleParser) longString(quote byte) (string, error) {
	p.pos += 3 // opening triple quote
	delim := strings.Repeat(string(quote), 3)
	var sb strings.Builder
	for p.pos < len(p.in) {
		if strings.HasPrefix(p.in[p.pos:], delim) {
			p.pos += 3
			return sb.String(), nil
		}
		c := p.in[p.pos]
		if c == '\\' {
			r, err := p.escape()
			if err != nil {
				return "", err
			}
			sb.WriteRune(r)
			continue
		}
		if c == '\n' {
			p.line++
		}
		sb.WriteByte(c)
		p.pos++
	}
	return "", p.errf("unterminated long string literal")
}

func (p *turtleParser) escape() (rune, error) {
	p.pos++ // backslash
	if p.pos >= len(p.in) {
		return 0, p.errf("dangling escape")
	}
	c := p.in[p.pos]
	p.pos++
	switch c {
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 't':
		return '\t', nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case '"':
		return '"', nil
	case '\'':
		return '\'', nil
	case '\\':
		return '\\', nil
	case 'u', 'U':
		width := 4
		if c == 'U' {
			width = 8
		}
		if p.pos+width > len(p.in) {
			return 0, p.errf("truncated unicode escape")
		}
		var r rune
		if _, err := fmt.Sscanf(p.in[p.pos:p.pos+width], "%x", &r); err != nil {
			return 0, p.errf("invalid unicode escape")
		}
		p.pos += width
		return r, nil
	default:
		return 0, p.errf("unknown escape \\%c", c)
	}
}

func (p *turtleParser) numericLiteral() (Term, error) {
	start := p.pos
	if c := p.peekByte(); c == '+' || c == '-' {
		p.pos++
	}
	digits, dot, exp := 0, false, false
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch {
		case c >= '0' && c <= '9':
			digits++
			p.pos++
		case c == '.' && !dot && !exp:
			// a trailing '.' is the statement terminator, not a decimal
			// point, unless followed by a digit
			if p.pos+1 >= len(p.in) || p.in[p.pos+1] < '0' || p.in[p.pos+1] > '9' {
				goto done
			}
			dot = true
			p.pos++
		case (c == 'e' || c == 'E') && !exp && digits > 0:
			exp = true
			p.pos++
			if c2 := p.peekByte(); c2 == '+' || c2 == '-' {
				p.pos++
			}
		default:
			goto done
		}
	}
done:
	if digits == 0 {
		return Term{}, p.errf("malformed numeric literal")
	}
	lex := p.in[start:p.pos]
	switch {
	case exp:
		return NewTypedLiteral(lex, XSDDouble), nil
	case dot:
		return NewTypedLiteral(lex, XSDDecimal), nil
	default:
		return NewTypedLiteral(lex, XSDInteger), nil
	}
}

func (p *turtleParser) skipWS() {
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch c {
		case ' ', '\t', '\r':
			p.pos++
		case '\n':
			p.line++
			p.pos++
		case '#':
			for p.pos < len(p.in) && p.in[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) eat(c byte) bool {
	if p.pos < len(p.in) && p.in[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *turtleParser) peekByte() byte {
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *turtleParser) peekRune() string {
	if p.pos >= len(p.in) {
		return "EOF"
	}
	r, _ := utf8.DecodeRuneInString(p.in[p.pos:])
	return string(r)
}

func isTurtleNameChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '%'
}
