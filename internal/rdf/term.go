// Package rdf implements the RDF data model used throughout adhocshare:
// terms (IRIs, literals, blank nodes and query variables), triples, triple
// patterns, an indexed in-memory graph store and N-Triples serialization.
//
// Terms are small comparable value types so they can be used directly as map
// keys, which the graph indexes and the solution-mapping machinery rely on.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the lexical space a Term belongs to.
type Kind uint8

const (
	// KindInvalid is the zero Kind; a zero Term is not a valid RDF term.
	KindInvalid Kind = iota
	// KindIRI is an IRI reference (RFC 3987).
	KindIRI
	// KindLiteral is an RDF literal, optionally carrying a language tag or
	// a datatype IRI.
	KindLiteral
	// KindBlank is a blank node with a document-scoped label.
	KindBlank
	// KindVar is a SPARQL query variable. Variables never occur in stored
	// data; they appear only in triple patterns.
	KindVar
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	case KindVar:
		return "var"
	default:
		return "invalid"
	}
}

// Well-known datatype IRIs from XML Schema used by the expression evaluator.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal  = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
)

// RDFType is the rdf:type predicate IRI, the expansion of the SPARQL
// keyword "a".
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// Term is one RDF term or query variable. It is a comparable value type:
// two Terms are the same term exactly when they are == to each other.
//
// The interpretation of the fields depends on Kind:
//
//	KindIRI:     Value is the IRI string.
//	KindLiteral: Value is the lexical form, Lang the optional language tag,
//	             Datatype the optional datatype IRI ("" means a plain/
//	             xsd:string literal).
//	KindBlank:   Value is the blank-node label (without the "_:" prefix).
//	KindVar:     Value is the variable name (without the "?" sigil).
type Term struct {
	Kind     Kind
	Value    string
	Lang     string
	Datatype string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: KindLiteral, Value: lex} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: KindLiteral, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a literal term with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: datatype}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatInt(v, 10), Datatype: XSDInteger}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	if v {
		return Term{Kind: KindLiteral, Value: "true", Datatype: XSDBoolean}
	}
	return Term{Kind: KindLiteral, Value: "false", Datatype: XSDBoolean}
}

// NewBlank returns a blank-node term with the given label.
func NewBlank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// NewVar returns a query-variable term. The name must not include the
// leading "?" or "$" sigil.
func NewVar(name string) Term { return Term{Kind: KindVar, Value: name} }

// IsVar reports whether the term is a query variable.
func (t Term) IsVar() bool { return t.Kind == KindVar }

// IsConcrete reports whether the term may occur in stored data, i.e. it is
// an IRI, literal or blank node.
func (t Term) IsConcrete() bool {
	return t.Kind == KindIRI || t.Kind == KindLiteral || t.Kind == KindBlank
}

// IsZero reports whether the term is the zero value.
func (t Term) IsZero() bool { return t.Kind == KindInvalid }

// Equal reports whether two terms are identical (same kind and all lexical
// components equal). It is equivalent to ==, provided for readability.
func (t Term) Equal(u Term) bool { return t == u }

// String renders the term in N-Triples-compatible syntax. Variables render
// with a leading "?".
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindLiteral:
		var sb strings.Builder
		sb.WriteByte('"')
		sb.WriteString(escapeLiteral(t.Value))
		sb.WriteByte('"')
		if t.Lang != "" {
			sb.WriteByte('@')
			sb.WriteString(t.Lang)
		} else if t.Datatype != "" {
			sb.WriteString("^^<")
			sb.WriteString(t.Datatype)
			sb.WriteByte('>')
		}
		return sb.String()
	case KindBlank:
		return "_:" + t.Value
	case KindVar:
		return "?" + t.Value
	default:
		return "<invalid>"
	}
}

// SizeBytes estimates the wire size of the term for the network cost model:
// the lexical components plus the kind tag.
func (t Term) SizeBytes() int {
	return kindWidth(t.Kind) + len(t.Value) + len(t.Lang) + len(t.Datatype)
}

// kindWidth is the fixed wire width of a term's kind tag.
func kindWidth(Kind) int { return 2 }

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// Compare imposes a total order over terms, used by ORDER BY and by
// deterministic test output. The order follows the SPARQL recommendation's
// ordering sketch: blank nodes < IRIs < literals, with variables ordered
// first (variables only occur in patterns). Within literals, an attempt is
// made to compare numerically when both sides are numeric.
func Compare(a, b Term) int {
	ra, rb := orderRank(a), orderRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	if a.Kind == KindLiteral && b.Kind == KindLiteral {
		na, oka := NumericValue(a)
		nb, okb := NumericValue(b)
		if oka && okb {
			switch {
			case na < nb:
				return -1
			case na > nb:
				return 1
			}
			// fall through to lexical tie-break for stability
		}
	}
	if c := strings.Compare(a.Value, b.Value); c != 0 {
		return c
	}
	if c := strings.Compare(a.Lang, b.Lang); c != 0 {
		return c
	}
	return strings.Compare(a.Datatype, b.Datatype)
}

func orderRank(t Term) int {
	switch t.Kind {
	case KindVar:
		return 0
	case KindBlank:
		return 1
	case KindIRI:
		return 2
	case KindLiteral:
		return 3
	default:
		return -1
	}
}

// NumericValue extracts a float64 from a numeric literal. It accepts
// xsd:integer, xsd:decimal, xsd:double and untyped literals whose lexical
// form parses as a number.
func NumericValue(t Term) (float64, bool) {
	if t.Kind != KindLiteral {
		return 0, false
	}
	switch t.Datatype {
	case "", XSDInteger, XSDDecimal, XSDDouble:
		return parseFloat(t.Value)
	default:
		return 0, false
	}
}

// parseFloat is a small strconv.ParseFloat wrapper that rejects empty and
// obviously non-numeric strings quickly.
func parseFloat(s string) (float64, bool) {
	if s == "" {
		return 0, false
	}
	c := s[0]
	if c != '+' && c != '-' && c != '.' && (c < '0' || c > '9') {
		return 0, false
	}
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	if err != nil {
		return 0, false
	}
	// Reject trailing garbage such as "12abc" which Sscanf tolerates.
	if !isNumericLexical(s) {
		return 0, false
	}
	return v, true
}

func isNumericLexical(s string) bool {
	i := 0
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	digits, dot, exp := 0, false, false
	for ; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			digits++
		case c == '.' && !dot && !exp:
			dot = true
		case (c == 'e' || c == 'E') && !exp && digits > 0:
			exp = true
			if i+1 < len(s) && (s[i+1] == '+' || s[i+1] == '-') {
				i++
			}
		default:
			return false
		}
	}
	return digits > 0
}
